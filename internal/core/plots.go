package core

import (
	"fmt"
	"math"
	"sort"

	"fex/internal/plot"
	"fex/internal/stats"
	"fex/internal/table"
)

// BaselineType is the build type every normalized plot divides by —
// native GCC, as in Figure 6 ("Normalized runtime (w.r.t. native GCC)").
const BaselineType = "gcc_native"

// metricByBenchType extracts metric values keyed by (bench, type) from a
// collected table, restricted to the smallest thread count present.
func metricByBenchType(tbl *table.Table, metric string) (benches []string, types []string, values map[[2]string]float64, err error) {
	threads, err := tbl.Floats("threads")
	if err != nil {
		return nil, nil, nil, err
	}
	minThreads := math.Inf(1)
	for _, t := range threads {
		if t < minThreads {
			minThreads = t
		}
	}
	benchCol, err := tbl.Strings("bench")
	if err != nil {
		return nil, nil, nil, err
	}
	typeCol, err := tbl.Strings("type")
	if err != nil {
		return nil, nil, nil, err
	}
	vals, err := tbl.Floats(metric)
	if err != nil {
		return nil, nil, nil, err
	}
	values = make(map[[2]string]float64)
	benchSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	for i := range benchCol {
		if threads[i] != minThreads {
			continue
		}
		values[[2]string{benchCol[i], typeCol[i]}] = vals[i]
		if !benchSeen[benchCol[i]] {
			benchSeen[benchCol[i]] = true
			benches = append(benches, benchCol[i])
		}
		if !typeSeen[typeCol[i]] {
			typeSeen[typeCol[i]] = true
			types = append(types, typeCol[i])
		}
	}
	return benches, types, values, nil
}

// NormalizedPerfPlot renders the Figure 6 family: per-benchmark runtime of
// every non-baseline build type normalized to the baseline, with a final
// "All" bar carrying the geometric mean. The metric defaults to modeled
// cycles.
func NormalizedPerfPlot(tbl *table.Table, metric, baseline, title string) (string, error) {
	if metric == "" {
		metric = "cycles"
	}
	if baseline == "" {
		baseline = BaselineType
	}
	benches, types, values, err := metricByBenchType(tbl, metric)
	if err != nil {
		return "", err
	}
	baseSeen := false
	for _, t := range types {
		if t == baseline {
			baseSeen = true
		}
	}
	if !baseSeen {
		return "", fmt.Errorf("core: normalized plot needs baseline type %q in results", baseline)
	}

	var series []plot.Series
	for _, t := range types {
		if t == baseline {
			continue
		}
		vals := make([]float64, 0, len(benches)+1)
		ratios := make([]float64, 0, len(benches))
		for _, b := range benches {
			base := values[[2]string{b, baseline}]
			v := values[[2]string{b, t}]
			if base == 0 {
				return "", fmt.Errorf("core: baseline %s has zero %s for %s", baseline, metric, b)
			}
			r := v / base
			vals = append(vals, r)
			ratios = append(ratios, r)
		}
		gm, err := stats.GeoMean(ratios)
		if err != nil {
			return "", err
		}
		vals = append(vals, gm)
		series = append(series, plot.Series{Name: seriesLabel(t), Values: vals})
	}
	if len(series) == 0 {
		return "", fmt.Errorf("core: normalized plot needs at least one non-baseline type")
	}
	cats := append(append([]string{}, benches...), "All")
	p := plot.GroupedBarPlot{
		Categories: cats,
		Series:     series,
		Opts: plot.Options{
			Title:   title,
			YLabel:  "Normalized runtime (w.r.t. " + seriesLabel(baseline) + ")",
			RefLine: 1.0,
		},
	}
	return p.RenderSVG()
}

// seriesLabel prettifies a build type for legends ("clang_native" →
// "Native (Clang)"), matching the paper's figure labels.
func seriesLabel(buildType string) string {
	switch buildType {
	case "gcc_native":
		return "Native (GCC)"
	case "clang_native":
		return "Native (Clang)"
	case "gcc_asan":
		return "ASan (GCC)"
	case "clang_asan":
		return "ASan (Clang)"
	default:
		return buildType
	}
}

// MemoryOverheadPlot renders max-RSS overhead bars normalized to the
// baseline type.
func MemoryOverheadPlot(tbl *table.Table, baseline, title string) (string, error) {
	return NormalizedPerfPlot(tbl, "max_rss", baseline, title)
}

// ThreadScalingPlot renders the multithreading lineplot: modeled cycles
// versus thread count, one line per (benchmark, build type).
func ThreadScalingPlot(tbl *table.Table, metric, title string) (string, error) {
	if metric == "" {
		metric = "cycles"
	}
	benchCol, err := tbl.Strings("bench")
	if err != nil {
		return "", err
	}
	typeCol, err := tbl.Strings("type")
	if err != nil {
		return "", err
	}
	threads, err := tbl.Floats("threads")
	if err != nil {
		return "", err
	}
	vals, err := tbl.Floats(metric)
	if err != nil {
		return "", err
	}
	type key struct{ bench, btype string }
	pts := map[key][]plot.LinePoint{}
	var order []key
	for i := range benchCol {
		k := key{benchCol[i], typeCol[i]}
		if _, ok := pts[k]; !ok {
			order = append(order, k)
		}
		pts[k] = append(pts[k], plot.LinePoint{X: threads[i], Y: vals[i]})
	}
	var series []plot.LineSeries
	for _, k := range order {
		p := pts[k]
		sort.Slice(p, func(i, j int) bool { return p[i].X < p[j].X })
		series = append(series, plot.LineSeries{
			Name:   k.bench + " " + seriesLabel(k.btype),
			Points: p,
		})
	}
	lp := plot.LinePlot{
		Series:  series,
		Opts:    plot.Options{Title: title, XLabel: "Threads", YLabel: metric},
		Markers: true,
	}
	return lp.RenderSVG()
}

// CacheMissPlot renders the stacked-grouped barplot Table I mentions "for
// complicated statistics such as cache misses at different levels": per
// benchmark, one stack per build type, segments L1D and LLC misses.
func CacheMissPlot(tbl *table.Table, title string) (string, error) {
	benches, types, l1, err := metricByBenchType(tbl, "l1d_misses")
	if err != nil {
		return "", err
	}
	_, _, llc, err := metricByBenchType(tbl, "llc_misses")
	if err != nil {
		return "", err
	}
	var groups []plot.StackGroup
	for _, t := range types {
		l1Vals := make([]float64, len(benches))
		llcVals := make([]float64, len(benches))
		for i, b := range benches {
			l1Vals[i] = l1[[2]string{b, t}]
			llcVals[i] = llc[[2]string{b, t}]
		}
		groups = append(groups, plot.StackGroup{
			Name: seriesLabel(t),
			Series: []plot.Series{
				{Name: "L1D misses", Values: l1Vals},
				{Name: "LLC misses", Values: llcVals},
			},
		})
	}
	p := plot.StackedGroupedBarPlot{
		Categories: benches,
		Groups:     groups,
		Opts:       plot.Options{Title: title, YLabel: "Cache misses"},
	}
	return p.RenderSVG()
}

// ThroughputLatencyPlot renders Figure 7's plot family: achieved
// throughput (x, in 10³ requests/s) versus mean latency (y, ms), one curve
// per build type.
func ThroughputLatencyPlot(tbl *table.Table, title string) (string, error) {
	typeCol, err := tbl.Strings("type")
	if err != nil {
		return "", err
	}
	tput, err := tbl.Floats("throughput")
	if err != nil {
		return "", err
	}
	lat, err := tbl.Floats("latency_ms")
	if err != nil {
		return "", err
	}
	pts := map[string][]plot.LinePoint{}
	var order []string
	for i := range typeCol {
		t := typeCol[i]
		if _, ok := pts[t]; !ok {
			order = append(order, t)
		}
		pts[t] = append(pts[t], plot.LinePoint{X: tput[i] / 1000, Y: lat[i]})
	}
	var series []plot.LineSeries
	for _, t := range order {
		p := pts[t]
		sort.Slice(p, func(i, j int) bool { return p[i].X < p[j].X })
		series = append(series, plot.LineSeries{Name: seriesLabel(t), Points: p})
	}
	lp := plot.LinePlot{
		Series: series,
		Opts: plot.Options{
			Title:  title,
			XLabel: "Throughput (x10^3 msg/s)",
			YLabel: "Latency (ms)",
		},
		Markers: true,
	}
	return lp.RenderSVG()
}
