package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"fex/internal/measure"
	"fex/internal/runlog"
	"fex/internal/table"
)

// ExperimentKind classifies the built-in experiment families (Table I:
// "Performance and memory overheads, security evaluation" plus
// throughput–latency for the real-world applications).
type ExperimentKind int

// Experiment kinds.
const (
	KindPerformance ExperimentKind = iota + 1
	KindMemory
	KindVariableInput
	KindThroughputLatency
	KindSecurity
)

// String returns the kind name.
func (k ExperimentKind) String() string {
	switch k {
	case KindPerformance:
		return "performance"
	case KindMemory:
		return "memory"
	case KindVariableInput:
		return "variable-input"
	case KindThroughputLatency:
		return "throughput-latency"
	case KindSecurity:
		return "security"
	default:
		return fmt.Sprintf("ExperimentKind(%d)", int(k))
	}
}

// Experiment describes one registered experiment: which runner executes
// it, how its log is collected into a table, and how the table is
// plotted. Users extend FEX by registering new Experiments — the paper's
// §III-A workflow of writing run.py / collect.py / plot.py.
type Experiment struct {
	// Name is the -n value ("phoenix", "splash", "nginx", "ripe", …).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Suite names the workload suite this experiment runs ("" for
	// app-level experiments like nginx).
	Suite string
	// Kind classifies the experiment.
	Kind ExperimentKind
	// DefaultTypes are the build types used when -t is omitted.
	DefaultTypes []string
	// PlotKinds lists the plot names Plot accepts.
	PlotKinds []string
	// CSVKinds types the experiment's CSV columns for re-parsing.
	CSVKinds map[string]table.Kind
	// NewRunner constructs the experiment's runner.
	NewRunner func(fx *Fex) (Runner, error)
	// Collect aggregates a parsed run log into a table; nil uses
	// GenericCollect (re-use of the generic collect.py, §III-A).
	Collect func(lg *runlog.Log) (*table.Table, error)
	// Plot renders a named plot from the collected table; nil means the
	// experiment has no plots (like RIPE).
	Plot func(tbl *table.Table, kind string) (string, error)
	// Validate optionally rejects unsupported configurations.
	Validate func(cfg Config) error
}

// ValidateConfig applies the experiment's config validation.
func (e *Experiment) ValidateConfig(cfg Config) error {
	if e.Validate != nil {
		return e.Validate(cfg)
	}
	return nil
}

// RegisterExperiment adds an experiment; duplicate names are an error.
func (fx *Fex) RegisterExperiment(e *Experiment) error {
	if e == nil || e.Name == "" {
		return errors.New("core: experiment requires a name")
	}
	if e.NewRunner == nil {
		return fmt.Errorf("core: experiment %q requires a runner", e.Name)
	}
	if _, dup := fx.experiments[e.Name]; dup {
		return fmt.Errorf("core: duplicate experiment %q", e.Name)
	}
	fx.experiments[e.Name] = e
	return nil
}

// Experiment looks up a registered experiment.
func (fx *Fex) Experiment(name string) (*Experiment, error) {
	e, ok := fx.experiments[name]
	if !ok {
		names := fx.ExperimentNames()
		return nil, fmt.Errorf("core: unknown experiment %q (have: %v)", name, names)
	}
	return e, nil
}

// ExperimentNames lists registered experiments, sorted.
func (fx *Fex) ExperimentNames() []string {
	out := make([]string, 0, len(fx.experiments))
	for n := range fx.experiments {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GenericCollect is the stock collect stage: it averages each metric over
// repetitions, grouped by (suite, benchmark, build type, threads), and
// emits one row per group — the generic collect.py most experiments
// re-use unchanged. Aggregation runs on typed metric vectors: per-group
// sums and counts are MetricVectors keyed like the measurements
// themselves, so the union of metric names falls out of the vectors'
// sorted order with no map or re-sort.
func GenericCollect(lg *runlog.Log) (*table.Table, error) {
	if len(lg.Measurements) == 0 {
		return nil, errors.New("core: log contains no measurements")
	}
	// The union of metric names across the log, in sorted order.
	union := measure.NewMetricVector()
	for _, m := range lg.Measurements {
		for i := 0; i < m.Values.Len(); i++ {
			name, _ := m.Values.At(i)
			union.Set(name, 0)
		}
	}
	metrics := union.Names()

	type groupKey struct {
		suite, bench, btype string
		threads             int
	}
	type acc struct {
		sums, counts *measure.MetricVector
	}
	var order []groupKey
	groups := map[groupKey]*acc{}
	for _, m := range lg.Measurements {
		k := groupKey{m.Suite, m.Benchmark, m.BuildType, m.Threads}
		g, ok := groups[k]
		if !ok {
			g = &acc{sums: measure.NewMetricVector(), counts: measure.NewMetricVector()}
			groups[k] = g
			order = append(order, k)
		}
		for i := 0; i < m.Values.Len(); i++ {
			name, v := m.Values.At(i)
			g.sums.Set(name, g.sums.Value(name)+v)
			g.counts.Set(name, g.counts.Value(name)+1)
		}
	}

	names := append([]string{"suite", "bench", "type", "threads"}, metrics...)
	kinds := make([]table.Kind, len(names))
	kinds[0], kinds[1], kinds[2] = table.String, table.String, table.String
	kinds[3] = table.Float
	for i := 4; i < len(kinds); i++ {
		kinds[i] = table.Float
	}
	b, err := table.NewBuilder(names, kinds)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		g := groups[k]
		row := []any{k.suite, k.bench, k.btype, float64(k.threads)}
		for _, m := range metrics {
			if c := g.counts.Value(m); c > 0 {
				row = append(row, g.sums.Value(m)/c)
			} else {
				row = append(row, 0.0)
			}
		}
		if err := b.Append(row...); err != nil {
			return nil, err
		}
	}
	return b.Table()
}

// genericCSVKinds types the GenericCollect output columns.
func genericCSVKinds() map[string]table.Kind {
	kinds := map[string]table.Kind{
		"suite": table.String, "bench": table.String, "type": table.String,
	}
	// Every other column is numeric; ReadCSV defaults unknown columns to
	// String, so enumerate the common metric names.
	for _, m := range []string{
		"threads", "cycles", "instructions", "ipc", "branch_misses",
		"l1d_misses", "llc_misses", "max_rss", "cache_refs", "mem_cycles",
		"rss_mbytes", "write_ratio", "wall_ns", "checksum", "input_class",
		"wall_seconds",
	} {
		kinds[m] = table.Float
	}
	return kinds
}

// threadsLabel renders a thread count for plot labels.
func threadsLabel(t float64) string { return strconv.Itoa(int(t)) }
