package core

import (
	"errors"
	"fmt"

	"fex/internal/runlog"
	"fex/internal/table"
)

func suiteOf(app string) string {
	if app == "ripe" {
		return securitySuite
	}
	return appSuite
}

// NetCollect is the specialized collect stage for throughput–latency
// experiments (the 14-LoC collect.py of §IV-B): one row per sweep point.
func NetCollect(lg *runlog.Log) (*table.Table, error) {
	if len(lg.Measurements) == 0 {
		return nil, errors.New("core: log contains no measurements")
	}
	b, err := table.NewBuilder(
		[]string{"bench", "type", "offered_rate", "throughput", "latency_ms", "p95_ms", "p99_ms", "errors"},
		[]table.Kind{table.String, table.String, table.Float, table.Float, table.Float, table.Float, table.Float, table.Float},
	)
	if err != nil {
		return nil, err
	}
	for _, m := range lg.Measurements {
		if err := b.Append(
			m.Benchmark, m.BuildType,
			m.Values.Value("offered_rate"), m.Values.Value("throughput"),
			m.Values.Value("latency_ms"), m.Values.Value("p95_ms"), m.Values.Value("p99_ms"),
			m.Values.Value("errors"),
		); err != nil {
			return nil, err
		}
	}
	return b.Table()
}

// NetCSVKinds types the NetCollect columns.
func NetCSVKinds() map[string]table.Kind {
	return map[string]table.Kind{
		"bench": table.String, "type": table.String,
		"offered_rate": table.Float, "throughput": table.Float,
		"latency_ms": table.Float, "p95_ms": table.Float,
		"p99_ms": table.Float, "errors": table.Float,
	}
}

// registerNetworkExperiments installs the nginx, apache, and memcached
// throughput–latency experiments.
func (fx *Fex) registerNetworkExperiments() error {
	for _, app := range []string{"nginx", "apache", "memcached"} {
		app := app
		if err := fx.RegisterExperiment(&Experiment{
			Name:         app,
			Description:  app + " throughput-latency experiment (Figure 7 family)",
			Kind:         KindThroughputLatency,
			DefaultTypes: []string{"gcc_native", "clang_native"},
			PlotKinds:    []string{"tput-latency"},
			CSVKinds:     NetCSVKinds(),
			NewRunner: func(fx *Fex) (Runner, error) {
				return &ServerBenchRunner{App: app}, nil
			},
			Collect: NetCollect,
			Plot: func(tbl *table.Table, kind string) (string, error) {
				if kind != "tput-latency" && kind != "" {
					return "", fmt.Errorf("core: unknown plot %q", kind)
				}
				return ThroughputLatencyPlot(tbl, app+": throughput vs latency")
			},
		}); err != nil {
			return err
		}
	}
	return nil
}
