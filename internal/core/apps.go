package core

import (
	"fmt"

	"fex/internal/workload"
)

// appWorkload is the pseudo-workload standing in for a standalone
// application's sources in the build system: compiling it with a build
// type yields the artifact whose cost vector and security profile describe
// that application's binary under that type. Its Run method executes a
// small deterministic server-shaped operation mix, used to probe the
// relative codegen cost of a build type.
type appWorkload struct {
	suite string
	name  string
	desc  string
}

var _ workload.Workload = appWorkload{}

// Name implements workload.Workload.
func (a appWorkload) Name() string { return a.name }

// Suite implements workload.Workload.
func (a appWorkload) Suite() string { return a.suite }

// Description implements workload.Workload.
func (a appWorkload) Description() string { return a.desc }

// DefaultInput implements workload.Workload.
func (a appWorkload) DefaultInput(class workload.SizeClass) workload.Input {
	switch class {
	case workload.SizeTest:
		return workload.Input{N: 1 << 8, Seed: 99}
	case workload.SizeSmall:
		return workload.Input{N: 1 << 12, Seed: 99}
	default:
		return workload.Input{N: 1 << 16, Seed: 99}
	}
}

// Run implements workload.Workload: a request-processing-shaped mix of
// parsing (branches, int ops), buffer copies (memory traffic), and light
// hashing.
func (a appWorkload) Run(in workload.Input, threads int) (workload.Counters, error) {
	threads, err := workload.ValidateThreads(threads)
	if err != nil {
		return workload.Counters{}, err
	}
	n := in.N
	if n < 16 {
		return workload.Counters{}, fmt.Errorf("%w: app workload size %d", workload.ErrBadInput, n)
	}
	buf := make([]byte, 2048)
	for i := range buf {
		buf[i] = byte(i)
	}
	total := workload.ParallelFor(n, threads, func(ctr *workload.Counters, _, lo, hi int) {
		var sum uint64
		for r := lo; r < hi; r++ {
			// "Parse" a request line.
			for i := 0; i < 64; i++ {
				if buf[i] == byte(r) {
					sum++
				}
			}
			// "Copy" the response body.
			var h uint64 = 1469598103934665603
			for i := 0; i < len(buf); i += 8 {
				h = (h ^ uint64(buf[i])) * 1099511628211
			}
			sum ^= h
		}
		span := uint64(hi - lo)
		ctr.Branches += 64 * span
		ctr.IntOps += (64 + 512) * span
		ctr.MemReads += (64 + 256) * span
		ctr.MemWrites += 8 * span
		ctr.Checksum = workload.Mix(ctr.Checksum, sum^uint64(lo))
	})
	total.AllocBytes += 2048
	total.AllocCount++
	return total, nil
}

// appSuite and securitySuite group the standalone programs in the
// workload registry (they live under src/applications/ in the paper's
// directory tree, and RIPE under src/).
const (
	appSuite      = "applications"
	securitySuite = "security"
)

// appWorkloads returns the registered standalone applications and the
// security testbed program.
func appWorkloads() []workload.Workload {
	return []workload.Workload{
		appWorkload{suite: appSuite, name: "nginx", desc: "Nginx web server (event workers)"},
		appWorkload{suite: appSuite, name: "apache", desc: "Apache web server (per-connection model)"},
		appWorkload{suite: appSuite, name: "memcached", desc: "Memcached key-value cache"},
		appWorkload{suite: securitySuite, name: "ripe", desc: "RIPE runtime intrusion prevention evaluator"},
	}
}

// installArtifactFor maps an application to the installer artifact that
// provides its sources (the paper installs these from the Internet rather
// than shipping them under src/).
func installArtifactFor(app string) (string, bool) {
	switch app {
	case "nginx":
		return "nginx-1.4.1", true
	case "apache":
		return "apache-2.4.18", true
	case "memcached":
		return "memcached-1.4.25", true
	case "ripe":
		return "ripe", true
	default:
		return "", false
	}
}
