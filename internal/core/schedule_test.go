package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fex/internal/measure"
	"fex/internal/workload"
)

// fixedNow gives every scheduler test the same log header timestamp so
// serial and parallel logs can be compared byte for byte.
var fixedNow = func() time.Time { return time.Date(2017, 6, 26, 12, 0, 0, 0, time.UTC) }

func newSchedFex(t *testing.T) *Fex {
	t.Helper()
	fx, err := New(Options{Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

// deterministicHooks replaces the build and run actions with pure
// functions of the loop coordinates, so log and CSV bytes depend only on
// scheduling order — any nondeterminism the scheduler introduces shows up
// as a byte diff.
func deterministicHooks(perRunDelay time.Duration) Hooks {
	return Hooks{
		PerBenchmarkAction: func(rc *RunContext, buildType string, w workload.Workload) error {
			rc.Log.WriteNote(fmt.Sprintf("built %s/%s [%s]", w.Suite(), w.Name(), buildType))
			return nil
		},
		PerRunAction: func(rc *RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
			if perRunDelay > 0 {
				time.Sleep(perRunDelay)
			}
			return measure.FromMap(map[string]float64{
				"cycles": float64(len(w.Name())*1000 + len(buildType)*100 + threads*10 + rep),
			}), nil
		},
	}
}

func registerSchedExperiment(t *testing.T, fx *Fex, name string, hooks Hooks) {
	t.Helper()
	if err := fx.RegisterExperiment(&Experiment{
		Name: name,
		Kind: KindPerformance,
		NewRunner: func(fx *Fex) (Runner, error) {
			return &BenchRunner{Suite: "splash", Hooks: hooks}, nil
		},
		Collect: GenericCollect,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeCells(t *testing.T) {
	ws := map[string]workload.Workload{}
	full := newSchedFex(t)
	for _, n := range []string{"fft", "lu", "radix"} {
		w, err := full.Registry().Lookup("splash", n)
		if err != nil {
			t.Fatal(err)
		}
		ws[n] = w
	}

	tests := []struct {
		name    string
		types   []string
		benches []string
		want    [][2]string // (buildType, benchmark) in canonical order
	}{
		{
			name:  "single type single bench",
			types: []string{"gcc_native"}, benches: []string{"fft"},
			want: [][2]string{{"gcc_native", "fft"}},
		},
		{
			name:  "types outermost, benches innermost",
			types: []string{"gcc_native", "clang_native"}, benches: []string{"fft", "lu"},
			want: [][2]string{
				{"gcc_native", "fft"}, {"gcc_native", "lu"},
				{"clang_native", "fft"}, {"clang_native", "lu"},
			},
		},
		{
			name:  "order follows inputs not sorting",
			types: []string{"clang_native", "gcc_native"}, benches: []string{"radix", "fft"},
			want: [][2]string{
				{"clang_native", "radix"}, {"clang_native", "fft"},
				{"gcc_native", "radix"}, {"gcc_native", "fft"},
			},
		},
		{
			name:  "no benches",
			types: []string{"gcc_native"}, benches: nil,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var benches []workload.Workload
			for _, n := range tt.benches {
				benches = append(benches, ws[n])
			}
			got := makeCells(tt.types, benches, "")
			if len(got) != len(tt.want) {
				t.Fatalf("got %d cells, want %d", len(got), len(tt.want))
			}
			for i, c := range got {
				if c.buildType != tt.want[i][0] || c.workload.Name() != tt.want[i][1] {
					t.Errorf("cell %d = (%s, %s), want (%s, %s)",
						i, c.buildType, c.workload.Name(), tt.want[i][0], tt.want[i][1])
				}
			}
		})
	}
}

// TestSchedulerPoolBounds proves the pool runs exactly Jobs cells
// concurrently: never more (max tracked across the run), and genuinely
// that many at once (a barrier that only opens when Jobs cells are in
// flight simultaneously).
func TestSchedulerPoolBounds(t *testing.T) {
	const jobs = 3
	fx := newSchedFex(t)

	var inFlight, maxInFlight atomic.Int64
	arrived := make(chan struct{}, 64)
	release := make(chan struct{})
	var releaseOnce sync.Once
	go func() {
		for i := 0; i < jobs; i++ {
			<-arrived
		}
		releaseOnce.Do(func() { close(release) })
	}()

	hooks := deterministicHooks(0)
	hooks.PerRunAction = func(rc *RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
		n := inFlight.Add(1)
		for {
			cur := maxInFlight.Load()
			if n <= cur || maxInFlight.CompareAndSwap(cur, n) {
				break
			}
		}
		arrived <- struct{}{}
		select {
		case <-release:
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("pool never reached %d concurrent cells", jobs)
		}
		inFlight.Add(-1)
		return measure.FromMap(map[string]float64{"cycles": 1}), nil
	}
	registerSchedExperiment(t, fx, "sched_bounds", hooks)

	_, err := fx.Run(context.Background(), Config{
		Experiment: "sched_bounds",
		BuildTypes: []string{"gcc_native", "clang_native"},
		Benchmarks: []string{"fft", "lu", "radix"},
		Input:      workload.SizeTest,
		Jobs:       jobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxInFlight.Load(); got != jobs {
		t.Fatalf("max concurrent cells = %d, want exactly %d", got, jobs)
	}
}

// TestSchedulerDeterministicOutput is the -race regression test of the
// determinism contract: a 4-benchmark suite at Jobs: 4 must store a run
// log and a collected CSV that are byte-identical to the Jobs: 1 run.
func TestSchedulerDeterministicOutput(t *testing.T) {
	var logs, csvs []string
	for _, jobs := range []int{1, 4} {
		fx := newSchedFex(t)
		registerSchedExperiment(t, fx, "sched_ident", deterministicHooks(0))
		report, err := fx.Run(context.Background(), Config{
			Experiment: "sched_ident",
			BuildTypes: []string{"gcc_native", "clang_native"},
			Benchmarks: []string{"fft", "lu", "radix", "ocean"},
			Threads:    []int{1, 2},
			Reps:       2,
			Input:      workload.SizeTest,
			Jobs:       jobs,
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if want := 2 * 4 * 2 * 2; report.Measurements != want {
			t.Fatalf("jobs=%d: %d measurements, want %d", jobs, report.Measurements, want)
		}
		lg, err := fx.ReadResult(report.LogPath)
		if err != nil {
			t.Fatal(err)
		}
		csv, err := fx.ReadResult(report.CSVPath)
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, string(lg))
		csvs = append(csvs, string(csv))
	}
	if logs[0] != logs[1] {
		t.Errorf("run log differs between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", logs[0], logs[1])
	}
	if csvs[0] != csvs[1] {
		t.Errorf("collected CSV differs between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", csvs[0], csvs[1])
	}
}

// TestSchedulerSkipBenchmark checks SkipBenchmark() sentinel semantics
// under parallel execution: a PerBenchmarkAction returning it skips only
// its own cell, records the skip note in canonical log position, and
// leaves every other cell's measurements intact.
func TestSchedulerSkipBenchmark(t *testing.T) {
	fx := newSchedFex(t)
	hooks := deterministicHooks(0)
	base := hooks.PerBenchmarkAction
	hooks.PerBenchmarkAction = func(rc *RunContext, buildType string, w workload.Workload) error {
		if buildType == "clang_native" && w.Name() == "lu" {
			return SkipBenchmark()
		}
		return base(rc, buildType, w)
	}
	registerSchedExperiment(t, fx, "sched_skip", hooks)

	report, err := fx.Run(context.Background(), Config{
		Experiment: "sched_skip",
		BuildTypes: []string{"gcc_native", "clang_native"},
		Benchmarks: []string{"fft", "lu", "radix"},
		Input:      workload.SizeTest,
		Jobs:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 types × 3 benches minus the one skipped cell.
	if want := 2*3 - 1; report.Measurements != want {
		t.Fatalf("%d measurements, want %d", report.Measurements, want)
	}
	lg, err := fx.ReadResult(report.LogPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lg), "NOTE|skipped splash/lu [clang_native]") {
		t.Errorf("log missing skip note:\n%s", lg)
	}
	// The skipped cell must not have produced a measurement; its siblings
	// under the other build type must have.
	if strings.Contains(string(lg), "RUN|suite=splash|bench=lu|type=clang_native") {
		t.Errorf("skipped cell still produced measurements:\n%s", lg)
	}
	if !strings.Contains(string(lg), "RUN|suite=splash|bench=lu|type=gcc_native") {
		t.Errorf("sibling cell was skipped too:\n%s", lg)
	}
}

// TestSchedulerErrorStopsDispatch checks the parallel loop's error path:
// a failing cell aborts the run with a wrapped cell error, like the
// serial loop's first-error abort.
func TestSchedulerErrorStopsDispatch(t *testing.T) {
	fx := newSchedFex(t)
	hooks := deterministicHooks(0)
	hooks.PerRunAction = func(rc *RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
		if w.Name() == "lu" {
			return nil, fmt.Errorf("modeled failure")
		}
		return measure.FromMap(map[string]float64{"cycles": 1}), nil
	}
	registerSchedExperiment(t, fx, "sched_err", hooks)

	_, err := fx.Run(context.Background(), Config{
		Experiment: "sched_err",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"fft", "lu", "radix"},
		Input:      workload.SizeTest,
		Jobs:       2,
	})
	if err == nil {
		t.Fatal("run succeeded despite failing cell")
	}
	if !strings.Contains(err.Error(), "splash/lu") || !strings.Contains(err.Error(), "modeled failure") {
		t.Errorf("error %q does not identify the failed cell", err)
	}
}

// TestSchedulerRealWorkloads runs the default hooks — real builds, dry
// runs, and modeled kernel executions — at Jobs: 4, so the race detector
// exercises the build cache, the container FS, and the kernels under
// genuine concurrency.
func TestSchedulerRealWorkloads(t *testing.T) {
	fx := newSchedFex(t)
	installAll(t, fx, "gcc-6.1", "clang-3.8.0")
	report, err := fx.Run(context.Background(), Config{
		Experiment: "phoenix",
		BuildTypes: []string{"gcc_native", "clang_native"},
		Benchmarks: []string{"histogram", "word_count", "kmeans", "string_match"},
		Input:      workload.SizeTest,
		Jobs:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4; report.Measurements != want {
		t.Fatalf("%d measurements, want %d", report.Measurements, want)
	}
}

// TestVariableInputRunnerParallel checks the extended loop's parallel
// path produces the same measurement set as its serial path.
func TestVariableInputRunnerParallel(t *testing.T) {
	var reports []*RunReport
	for _, jobs := range []int{1, 3} {
		fx := newSchedFex(t)
		installAll(t, fx, "gcc-6.1")
		if err := fx.RegisterExperiment(&Experiment{
			Name: "sched_varinput",
			Kind: KindVariableInput,
			NewRunner: func(fx *Fex) (Runner, error) {
				return &VariableInputRunner{
					Suite:  "phoenix",
					Inputs: []workload.SizeClass{workload.SizeTest, workload.SizeSmall},
				}, nil
			},
			Collect: GenericCollect,
		}); err != nil {
			t.Fatal(err)
		}
		report, err := fx.Run(context.Background(), Config{
			Experiment: "sched_varinput",
			BuildTypes: []string{"gcc_native"},
			Benchmarks: []string{"histogram", "linear_regression", "pca"},
			Jobs:       jobs,
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		reports = append(reports, report)
	}
	if reports[0].Measurements != reports[1].Measurements {
		t.Fatalf("serial run: %d measurements, parallel run: %d",
			reports[0].Measurements, reports[1].Measurements)
	}
	// Rows must agree cell-for-cell (live wall_ns differs; compare keys).
	for _, col := range []string{"suite", "bench", "type"} {
		a, err := reports[0].Table.Strings(col)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reports[1].Table.Strings(col)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("column %s differs: serial=%v parallel=%v", col, a, b)
		}
	}
}
