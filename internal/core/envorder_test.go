package core

import (
	"testing"

	"fex/internal/env"
)

// overlapProvider is a Provider whose Variables set a single shared
// variable — two of these registered under different keys that both match
// one build type force environmentFor to pick a winner.
type overlapProvider struct{ name, value string }

func (p overlapProvider) Name() string { return p.name }

func (p overlapProvider) Variables() *env.Environment {
	e := env.New()
	_ = e.Set(env.Updated, "CFLAGS", p.value)
	return e
}

// TestEnvironmentForProviderOrderDeterministic is the regression test for
// the map-iteration-order bug: when two providers match the same build
// type and set the same variable, the merge must resolve identically on
// every call — sorted key order, later key wins — not whichever way the
// providers map happened to iterate. Before the fix this flaked roughly
// every other process run; 64 iterations across fresh Fex instances make
// a regression overwhelmingly likely to trip.
func TestEnvironmentForProviderOrderDeterministic(t *testing.T) {
	for i := 0; i < 64; i++ {
		fx, err := New(Options{Now: fixedNow})
		if err != nil {
			t.Fatal(err)
		}
		// Both keys are substrings of the build type "aa_zz_custom", so both
		// providers merge; "zz" sorts after "aa" and must win.
		if err := fx.RegisterEnvProvider("aa", overlapProvider{name: "aa", value: "-flags-from-aa"}); err != nil {
			t.Fatal(err)
		}
		if err := fx.RegisterEnvProvider("zz", overlapProvider{name: "zz", value: "-flags-from-zz"}); err != nil {
			t.Fatal(err)
		}
		e := fx.environmentFor([]string{"aa_zz_custom"})
		got, ok := e.Get(env.Updated, "CFLAGS")
		if !ok {
			t.Fatalf("iteration %d: CFLAGS not set by either provider", i)
		}
		if got != "-flags-from-zz" {
			t.Fatalf("iteration %d: CFLAGS = %q, want provider under the later sorted key to win", i, got)
		}
	}
}
