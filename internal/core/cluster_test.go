package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fex/internal/measure"
	"fex/internal/remote"
	"fex/internal/workload"
)

// This file is the determinism-proving harness for the cluster execution
// tier (cluster.go): golden-style comparisons asserting that serial
// (-jobs 1), parallel (-jobs 4), and cluster (-hosts w1,w2,w3) runs of
// the builtin experiments store byte-identical logs and CSVs, plus fault
// injection (unreachable hosts, latency skew) proving failover never
// loses a shard or perturbs the stored output. Everything here runs
// under -race in CI.

// runModes enumerates the three execution backends the determinism
// contract spans.
var runModes = []struct {
	name string
	set  func(*Config)
}{
	{"serial", func(c *Config) { c.Jobs = 1 }},
	{"parallel", func(c *Config) { c.Jobs = 4 }},
	{"cluster", func(c *Config) { c.Hosts = []string{"w1", "w2", "w3"} }},
}

// runOnce executes one experiment on a fresh framework and returns the
// stored log and CSV bytes.
func runOnce(t *testing.T, cfg Config, installs []string) (string, string) {
	t.Helper()
	fx := newSchedFex(t)
	installAll(t, fx, installs...)
	report, err := fx.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg.String(), err)
	}
	lg, err := fx.ReadResult(report.LogPath)
	if err != nil {
		t.Fatal(err)
	}
	csv, err := fx.ReadResult(report.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	return string(lg), string(csv)
}

// determinismExperiments is the builtin-experiment matrix of the
// determinism contract: every builtin experiment whose runner is
// cell-based (the benchmark suites and their variable-input variants)
// plus the RIPE experiment. The network experiments (nginx, apache,
// memcached) measure live load-generator timing and are inherently
// machine-dependent; they have no determinism contract to assert. The
// matrix is shared by the cold three-mode suite below and the cold/warm
// -resume suite (resume_test.go).
var determinismExperiments = []struct {
	name     string
	cfg      Config
	installs []string
}{
	{
		name: "phoenix",
		cfg: Config{
			Experiment: "phoenix",
			BuildTypes: []string{"gcc_native", "clang_native"},
			Threads:    []int{1, 2},
			Reps:       2,
			Input:      workload.SizeTest,
		},
		installs: []string{"gcc-6.1", "clang-3.8.0"},
	},
	{
		name: "splash",
		cfg: Config{
			Experiment: "splash",
			BuildTypes: []string{"gcc_native", "clang_native"},
			Threads:    []int{1, 2},
			Input:      workload.SizeTest,
		},
		installs: []string{"gcc-6.1", "clang-3.8.0"},
	},
	{
		name: "parsec",
		cfg: Config{
			Experiment: "parsec",
			BuildTypes: []string{"gcc_native", "gcc_asan"},
			Reps:       2,
			Input:      workload.SizeTest,
		},
		installs: []string{"gcc-6.1"},
	},
	{
		name: "micro",
		cfg: Config{
			Experiment: "micro",
			BuildTypes: []string{"gcc_native", "clang_native", "gcc_asan"},
			Input:      workload.SizeTest,
		},
		installs: []string{"gcc-6.1", "clang-3.8.0"},
	},
	{
		name: "phoenix_var_input",
		cfg: Config{
			Experiment: "phoenix_var_input",
			BuildTypes: []string{"gcc_native", "clang_native"},
			Benchmarks: []string{"histogram", "string_match"},
		},
		installs: []string{"gcc-6.1", "clang-3.8.0"},
	},
	{
		name: "parsec_var_input",
		cfg: Config{
			Experiment: "parsec_var_input",
			BuildTypes: []string{"gcc_native"},
			Benchmarks: []string{"blackscholes", "streamcluster"},
		},
		installs: []string{"gcc-6.1"},
	},
	{
		// The time tool derives wall_seconds from the wall clock;
		// --modeled-time must make that metric deterministic too.
		name: "micro_time_tool",
		cfg: Config{
			Experiment: "micro",
			BuildTypes: []string{"gcc_native", "gcc_asan"},
			Reps:       2,
			Input:      workload.SizeTest,
			Tool:       "time",
		},
		installs: []string{"gcc-6.1"},
	},
	{
		name: "ripe",
		cfg: Config{
			Experiment: "ripe",
			BuildTypes: []string{"gcc_native", "clang_native"},
		},
		installs: []string{"gcc-6.1", "clang-3.8.0", "ripe"},
	},
	{
		// Duplicated sweep: the same benchmark listed twice in -b. The
		// planner measures the distinct cell once and replays its shard
		// into the duplicate position; the contract — byte-identical
		// logs/CSVs across all three tiers, cold and resumed — must hold
		// for deduped runs too.
		name: "splash_dup_sweep",
		cfg: Config{
			Experiment: "splash",
			BuildTypes: []string{"gcc_native", "clang_native"},
			Benchmarks: []string{"fft", "lu", "fft"},
			Threads:    []int{1, 2},
			Reps:       2,
			Input:      workload.SizeTest,
		},
		installs: []string{"gcc-6.1", "clang-3.8.0"},
	},
}

// TestClusterDeterminismBuiltinExperiments is the golden suite of the
// determinism contract: all three execution modes must store
// byte-identical run logs and CSVs for every experiment in the matrix.
// --modeled-time makes wall_ns a pure function of the workload, so the
// comparison covers every metric byte, not a live-timing subset.
func TestClusterDeterminismBuiltinExperiments(t *testing.T) {
	for _, tc := range determinismExperiments {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var logs, csvs, names []string
			for _, mode := range runModes {
				cfg := tc.cfg
				cfg.ModelTime = true
				mode.set(&cfg)
				lg, csv := runOnce(t, cfg, tc.installs)
				logs = append(logs, lg)
				csvs = append(csvs, csv)
				names = append(names, mode.name)
			}
			for i := 1; i < len(logs); i++ {
				if logs[i] != logs[0] {
					t.Errorf("%s: run log differs between %s and %s:\n--- %s ---\n%s\n--- %s ---\n%s",
						tc.name, names[0], names[i], names[0], logs[0], names[i], logs[i])
				}
				if csvs[i] != csvs[0] {
					t.Errorf("%s: CSV differs between %s and %s:\n--- %s ---\n%s\n--- %s ---\n%s",
						tc.name, names[0], names[i], names[0], csvs[0], names[i], csvs[i])
				}
			}
		})
	}
}

// clusterFex builds a framework whose cluster has the given hosts
// pre-registered, so tests can inject faults before the run provisions
// workers.
func clusterFex(t *testing.T, hosts ...string) (*Fex, *remote.Cluster) {
	t.Helper()
	cluster := remote.NewCluster()
	for _, h := range hosts {
		if _, err := cluster.Ensure(h); err != nil {
			t.Fatal(err)
		}
	}
	fx, err := New(Options{Now: fixedNow, Cluster: cluster})
	if err != nil {
		t.Fatal(err)
	}
	return fx, cluster
}

// serialReference runs the experiment serially on a fresh framework and
// returns its stored log and CSV — the golden bytes every fault-injection
// cluster run must still reproduce.
func serialReference(t *testing.T, name string, hooks Hooks, cfg Config) (string, string) {
	t.Helper()
	fx := newSchedFex(t)
	registerSchedExperiment(t, fx, name, hooks)
	ref := cfg
	ref.Hosts = nil
	ref.Jobs = 1
	report, err := fx.Run(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := fx.ReadResult(report.LogPath)
	if err != nil {
		t.Fatal(err)
	}
	csv, err := fx.ReadResult(report.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	return string(lg), string(csv)
}

// TestClusterFailoverHostDownFromStart injects an unreachable host before
// the run: its cells fail over to the healthy hosts, the failover is
// logged exactly once to the verbose stream, and the stored log and CSV
// stay byte-identical to the serial run — the outage is invisible in the
// experiment record.
func TestClusterFailoverHostDownFromStart(t *testing.T) {
	cfg := Config{
		Experiment: "cluster_failover",
		BuildTypes: []string{"gcc_native", "clang_native"},
		Benchmarks: []string{"fft", "lu", "radix", "ocean"},
		Reps:       2,
		Input:      workload.SizeTest,
		Verbose:    true,
		Hosts:      []string{"w1", "w2"},
	}
	wantLog, wantCSV := serialReference(t, "cluster_failover", deterministicHooks(0), cfg)

	fx, cluster := clusterFex(t, "w1", "w2")
	w2, err := cluster.Host("w2")
	if err != nil {
		t.Fatal(err)
	}
	w2.SetUnreachable(true)
	var verbose strings.Builder
	fx.verbose = newSyncWriter(&verbose)
	registerSchedExperiment(t, fx, "cluster_failover", deterministicHooks(0))

	report, err := fx.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("cluster run with one dead host failed: %v", err)
	}
	if want := 2 * 4 * 2; report.Measurements != want {
		t.Fatalf("%d measurements, want %d (shard loss?)", report.Measurements, want)
	}
	lg, err := fx.ReadResult(report.LogPath)
	if err != nil {
		t.Fatal(err)
	}
	csv, err := fx.ReadResult(report.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(lg) != wantLog {
		t.Errorf("failover run log differs from serial:\n--- serial ---\n%s\n--- cluster ---\n%s", wantLog, lg)
	}
	if string(csv) != wantCSV {
		t.Errorf("failover CSV differs from serial:\n--- serial ---\n%s\n--- cluster ---\n%s", wantCSV, csv)
	}
	if got := strings.Count(verbose.String(), "host w2 unreachable; failing over"); got != 1 {
		t.Errorf("failover logged %d times, want exactly once:\n%s", got, verbose.String())
	}
}

// TestClusterFailoverMidRunOutage kills a host mid-experiment (from
// inside a measurement hook, the moment the first cell lands on the other
// host) and asserts the run completes with the full measurement set and
// byte-identical output: the in-flight placement is the only one lost,
// and it is retried elsewhere.
func TestClusterFailoverMidRunOutage(t *testing.T) {
	cfg := Config{
		Experiment: "cluster_midrun",
		BuildTypes: []string{"gcc_native", "clang_native"},
		Benchmarks: []string{"fft", "lu", "radix", "ocean", "barnes", "water-nsquared"},
		Reps:       2,
		Input:      workload.SizeTest,
		Verbose:    true,
		Hosts:      []string{"w1", "w2", "w3"},
	}
	wantLog, wantCSV := serialReference(t, "cluster_midrun", deterministicHooks(0), cfg)

	fx, cluster := clusterFex(t, "w1", "w2", "w3")
	w3, err := cluster.Host("w3")
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	hooks := deterministicHooks(0)
	base := hooks.PerRunAction
	hooks.PerRunAction = func(rc *RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
		// First measured repetition anywhere in the cluster takes w3 down.
		once.Do(func() { w3.SetUnreachable(true) })
		return base(rc, buildType, w, threads, rep)
	}
	registerSchedExperiment(t, fx, "cluster_midrun", hooks)

	report, err := fx.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("cluster run with mid-run outage failed: %v", err)
	}
	if want := 2 * 6 * 2; report.Measurements != want {
		t.Fatalf("%d measurements, want %d (shard loss?)", report.Measurements, want)
	}
	lg, err := fx.ReadResult(report.LogPath)
	if err != nil {
		t.Fatal(err)
	}
	csv, err := fx.ReadResult(report.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(lg) != wantLog {
		t.Errorf("mid-run outage log differs from serial:\n--- serial ---\n%s\n--- cluster ---\n%s", wantLog, lg)
	}
	if string(csv) != wantCSV {
		t.Errorf("mid-run outage CSV differs from serial:\n--- serial ---\n%s\n--- cluster ---\n%s", wantCSV, csv)
	}
}

// TestClusterAllHostsUnreachable asserts the terminal failure mode: when
// every host is down, the run fails with an error that names the stranded
// cell and the hosts that were tried.
func TestClusterAllHostsUnreachable(t *testing.T) {
	fx, cluster := clusterFex(t, "w1", "w2")
	for _, name := range []string{"w1", "w2"} {
		h, err := cluster.Host(name)
		if err != nil {
			t.Fatal(err)
		}
		h.SetUnreachable(true)
	}
	registerSchedExperiment(t, fx, "cluster_dark", deterministicHooks(0))

	_, err := fx.Run(context.Background(), Config{
		Experiment: "cluster_dark",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"fft", "lu"},
		Input:      workload.SizeTest,
		Hosts:      []string{"w1", "w2"},
	})
	if err == nil {
		t.Fatal("run succeeded with every host unreachable")
	}
	if !errors.Is(err, remote.ErrUnreachable) {
		t.Errorf("error %v does not wrap remote.ErrUnreachable", err)
	}
	// Which cell discovers exhaustion depends on completion order; the
	// attribution must name a cell, its build type, and the full host set.
	for _, want := range []string{"cell splash/", "gcc_native", "w1", "w2", "no reachable host"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestClusterCellErrorAttribution asserts a genuine cell failure (not an
// outage) aborts the run with an error naming both the cell and the host
// it ran on, and is not retried elsewhere.
func TestClusterCellErrorAttribution(t *testing.T) {
	fx, _ := clusterFex(t, "w1", "w2")
	hooks := deterministicHooks(0)
	var attempts sync.Map
	hooks.PerRunAction = func(rc *RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
		if w.Name() == "lu" {
			n, _ := attempts.LoadOrStore("lu", new(int))
			*(n.(*int))++
			return nil, fmt.Errorf("modeled cell failure")
		}
		return measure.FromMap(map[string]float64{"cycles": 1}), nil
	}
	registerSchedExperiment(t, fx, "cluster_cellerr", hooks)

	_, err := fx.Run(context.Background(), Config{
		Experiment: "cluster_cellerr",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"fft", "lu", "radix"},
		Input:      workload.SizeTest,
		Hosts:      []string{"w1", "w2"},
	})
	if err == nil {
		t.Fatal("run succeeded despite failing cell")
	}
	for _, want := range []string{"splash/lu", "modeled cell failure", "remote w"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if n, ok := attempts.Load("lu"); !ok || *(n.(*int)) != 1 {
		t.Errorf("failing cell was retried; genuine failures must abort, not fail over")
	}
}

// TestClusterLatencySkew injects asymmetric network latency: the slow
// host simply absorbs fewer cells, and the stored output stays
// byte-identical to the serial run.
func TestClusterLatencySkew(t *testing.T) {
	cfg := Config{
		Experiment: "cluster_latency",
		BuildTypes: []string{"gcc_native", "clang_native"},
		Benchmarks: []string{"fft", "lu", "radix"},
		Input:      workload.SizeTest,
		Hosts:      []string{"w1", "w2"},
	}
	wantLog, wantCSV := serialReference(t, "cluster_latency", deterministicHooks(0), cfg)

	fx, cluster := clusterFex(t, "w1", "w2")
	w1, err := cluster.Host("w1")
	if err != nil {
		t.Fatal(err)
	}
	w1.SetLatency(30 * time.Millisecond)
	registerSchedExperiment(t, fx, "cluster_latency", deterministicHooks(0))

	report, err := fx.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := fx.ReadResult(report.LogPath)
	if err != nil {
		t.Fatal(err)
	}
	csv, err := fx.ReadResult(report.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(lg) != wantLog || string(csv) != wantCSV {
		t.Error("latency-skewed cluster output differs from serial run")
	}
}

// TestClusterBuildsStayOnWorkers proves cells really execute against the
// workers' private containers: after a cluster run the coordinator's own
// build cache is empty — every artifact was compiled by a worker build
// system.
func TestClusterBuildsStayOnWorkers(t *testing.T) {
	fx, _ := clusterFex(t, "w1", "w2")
	installAll(t, fx, "gcc-6.1")
	report, err := fx.Run(context.Background(), Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"array_read", "branch_heavy"},
		Input:      workload.SizeTest,
		ModelTime:  true,
		Hosts:      []string{"w1", "w2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Measurements != 2 {
		t.Fatalf("%d measurements, want 2", report.Measurements)
	}
	if got := fx.BuildSystem().CachedArtifacts(); got != 0 {
		t.Errorf("coordinator build cache holds %d artifacts; cluster cells must build on workers", got)
	}
}

// TestClusterUnknownBenchmarkStillFails asserts config validation happens
// before any remote dispatch.
func TestClusterUnknownBenchmarkStillFails(t *testing.T) {
	fx, _ := clusterFex(t, "w1")
	registerSchedExperiment(t, fx, "cluster_badbench", deterministicHooks(0))
	_, err := fx.Run(context.Background(), Config{
		Experiment: "cluster_badbench",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"no_such_bench"},
		Input:      workload.SizeTest,
		Hosts:      []string{"w1"},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown benchmarks") {
		t.Errorf("got %v", err)
	}
}

// TestClusterCorruptShardTransferFailsCell injects transfer corruption on
// a host: the coordinator must validate the fetched shard text before
// merging it and fail the cell with host and cell attribution — a
// corrupted transfer must never leak garbage records into the run log.
func TestClusterCorruptShardTransferFailsCell(t *testing.T) {
	fx, cluster := clusterFex(t, "w1")
	w1, err := cluster.Host("w1")
	if err != nil {
		t.Fatal(err)
	}
	w1.SetCorruptOutput(func(s string) string { return "<<garbled transfer>>\n" + s })
	registerSchedExperiment(t, fx, "cluster_corrupt", deterministicHooks(0))

	_, err = fx.Run(context.Background(), Config{
		Experiment: "cluster_corrupt",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"fft", "lu"},
		Reps:       2,
		Input:      workload.SizeTest,
		Hosts:      []string{"w1"},
	})
	if err == nil {
		t.Fatal("run succeeded despite corrupted shard transfers")
	}
	for _, want := range []string{"host w1", "cell splash/fft [gcc_native]", "corrupt shard transfer"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestClusterCorruptTransferDoesNotPersist closes the durability hole:
// a corrupted transfer must not be persisted to the result store either,
// or a later -resume would replay the garbage. After the failed run, a
// clean retry on the same framework must re-measure and succeed.
func TestClusterCorruptTransferDoesNotPersist(t *testing.T) {
	fx, cluster := clusterFex(t, "w1")
	w1, err := cluster.Host("w1")
	if err != nil {
		t.Fatal(err)
	}
	w1.SetCorruptOutput(func(s string) string { return strings.ReplaceAll(s, "|", "?") })
	registerSchedExperiment(t, fx, "cluster_heal", deterministicHooks(0))
	cfg := Config{
		Experiment: "cluster_heal",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"fft"},
		Input:      workload.SizeTest,
		ModelTime:  true,
		Hosts:      []string{"w1"},
	}
	if _, err := fx.Run(context.Background(), cfg); err == nil {
		t.Fatal("run succeeded despite corrupted shard transfers")
	}

	w1.SetCorruptOutput(nil)
	resume := cfg
	resume.Resume = true
	report, err := fx.Run(context.Background(), resume)
	if err != nil {
		t.Fatalf("clean retry after corruption failed: %v", err)
	}
	if report.Measurements != 1 {
		t.Fatalf("%d measurements after retry, want 1 (re-measured, not replayed garbage)", report.Measurements)
	}
}
