package core

import (
	"strings"
	"testing"

	"fex/internal/stats"
	"fex/internal/workload"
)

func TestAnalyzeDetectsASanSlowdown(t *testing.T) {
	fx := newFex(t)
	installAll(t, fx, "gcc-6.1")
	_ = runPhoenixSubset(t, fx, Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native", "gcc_asan"},
		Benchmarks: []string{"array_read", "alloc_churn"},
		Input:      workload.SizeTest,
		Reps:       4,
	})
	// Modeled cycles are deterministic, so the ratio is exact and the
	// test degenerates to "difference with zero variance" (p = 0).
	report, err := fx.Analyze("micro", "cycles", "gcc_native", "gcc_asan")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Comparisons) != 2 {
		t.Fatalf("comparisons %d", len(report.Comparisons))
	}
	for _, c := range report.Comparisons {
		if c.Ratio <= 1 {
			t.Errorf("%s: asan/native ratio %v, want > 1", c.Benchmark, c.Ratio)
		}
		if c.Test == nil {
			t.Fatalf("%s: no t-test with 4 reps", c.Benchmark)
		}
		if !c.Significant(0.05) {
			t.Errorf("%s: exact modeled difference not significant (p=%v)", c.Benchmark, c.Test.P)
		}
	}
	if !strings.Contains(report.String(), "array_read") {
		t.Error("report rendering missing benchmark")
	}
}

func TestAnalyzeDefaultsToWallTime(t *testing.T) {
	fx := newFex(t)
	installAll(t, fx, "gcc-6.1")
	_ = runPhoenixSubset(t, fx, Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native", "gcc_asan"},
		Benchmarks: []string{"array_read"},
		Input:      workload.SizeTest,
		Reps:       3,
	})
	report, err := fx.Analyze("micro", "", "gcc_native", "gcc_asan")
	if err != nil {
		t.Fatal(err)
	}
	if report.Metric != "wall_ns" {
		t.Errorf("default metric %q", report.Metric)
	}
}

func TestAnalyzeSingleRepHasNoTest(t *testing.T) {
	fx := newFex(t)
	installAll(t, fx, "gcc-6.1")
	_ = runPhoenixSubset(t, fx, Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native", "gcc_asan"},
		Benchmarks: []string{"array_read"},
		Input:      workload.SizeTest,
	})
	report, err := fx.Analyze("micro", "cycles", "gcc_native", "gcc_asan")
	if err != nil {
		t.Fatal(err)
	}
	if report.Comparisons[0].Test != nil {
		t.Error("t-test produced from a single repetition")
	}
	if report.Comparisons[0].Significant(0.05) {
		t.Error("single-rep comparison reported significant")
	}
}

// TestComparisonSignificantBoundary pins the two-rule significance
// verdict's boundary behavior, table-driven: exactly-touching confidence
// intervals OVERLAP (the shared endpoint is a mean both sides deem
// plausible) and are therefore NOT significant, no matter how small the
// p-value; p == alpha is not significant either (strict inequality); and
// a missing t-test or missing intervals degrade conservatively.
func TestComparisonSignificantBoundary(t *testing.T) {
	iv := func(lo, hi float64) *stats.Interval {
		return &stats.Interval{Lo: lo, Hi: hi, Level: 0.95}
	}
	test := func(p float64) *stats.TTestResult { return &stats.TTestResult{P: p} }
	cases := []struct {
		name string
		c    Comparison
		want bool
	}{
		{"no test at all", Comparison{}, false},
		{"tiny p, disjoint CIs", Comparison{Test: test(1e-9), ACI: iv(1, 2), BCI: iv(3, 4)}, true},
		{"tiny p, overlapping CIs", Comparison{Test: test(1e-9), ACI: iv(1, 3), BCI: iv(2, 4)}, false},
		{"tiny p, exactly touching CIs", Comparison{Test: test(1e-9), ACI: iv(1, 2), BCI: iv(2, 3)}, false},
		{"tiny p, touching the other way", Comparison{Test: test(1e-9), ACI: iv(2, 3), BCI: iv(1, 2)}, false},
		{"tiny p, identical degenerate CIs", Comparison{Test: test(1e-9), ACI: iv(5, 5), BCI: iv(5, 5)}, false},
		{"tiny p, disjoint degenerate CIs", Comparison{Test: test(1e-9), ACI: iv(5, 5), BCI: iv(7, 7)}, true},
		{"tiny p, degenerate CI on the boundary", Comparison{Test: test(1e-9), ACI: iv(5, 5), BCI: iv(5, 7)}, false},
		{"p exactly alpha", Comparison{Test: test(0.05), ACI: iv(1, 2), BCI: iv(3, 4)}, false},
		{"p just under alpha", Comparison{Test: test(0.049), ACI: iv(1, 2), BCI: iv(3, 4)}, true},
		{"p over alpha, disjoint CIs", Comparison{Test: test(0.5), ACI: iv(1, 2), BCI: iv(3, 4)}, false},
		{"tiny p, no CIs available", Comparison{Test: test(1e-9)}, true},
		{"tiny p, one CI missing", Comparison{Test: test(1e-9), ACI: iv(1, 2)}, true},
	}
	for _, tc := range cases {
		if got := tc.c.Significant(0.05); got != tc.want {
			t.Errorf("%s: Significant(0.05) = %v, want %v", tc.name, got, tc.want)
		}
	}
	// The interval primitive itself: touching intervals overlap in both
	// argument orders, so Disjoint is symmetric too.
	a, b := stats.Interval{Lo: 1, Hi: 2}, stats.Interval{Lo: 2, Hi: 3}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("touching intervals must overlap (inclusive boundary)")
	}
	if a.Disjoint(b) || b.Disjoint(a) {
		t.Error("touching intervals must not be disjoint")
	}
	c := stats.Interval{Lo: 2.0000001, Hi: 3}
	if a.Overlaps(c) || !a.Disjoint(c) {
		t.Error("separated intervals must be disjoint")
	}
}

// writeSyntheticLog stores a hand-written run log in the container
// filesystem under the given experiment name — Analyze reads the stored
// log directly, so edge cases (zero baselines, one-sided benchmarks) can
// be staged without executing a run.
func writeSyntheticLog(t *testing.T, fx *Fex, experiment, logText string) {
	t.Helper()
	fsys, err := fx.vfsOf()
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.WriteFile(logPath(experiment), []byte(logText), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeZeroBaseline pins the zero-baseline edge case of the
// speedup/overhead aggregation: a baseline whose mean is exactly zero
// cannot produce a ratio, so the comparison reports Ratio 0 instead of
// dividing by zero, and the analysis still succeeds.
func TestAnalyzeZeroBaseline(t *testing.T) {
	fx := newFex(t)
	writeSyntheticLog(t, fx, "synth_zero", ""+
		"HDR|experiment=synth_zero|types=a,b|reps=2\n"+
		"RUN|suite=s|bench=x|type=a|threads=1|rep=0|cycles=0\n"+
		"RUN|suite=s|bench=x|type=a|threads=1|rep=1|cycles=0\n"+
		"RUN|suite=s|bench=x|type=b|threads=1|rep=0|cycles=10\n"+
		"RUN|suite=s|bench=x|type=b|threads=1|rep=1|cycles=12\n")
	report, err := fx.Analyze("synth_zero", "cycles", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Comparisons) != 1 {
		t.Fatalf("comparisons %d, want 1", len(report.Comparisons))
	}
	c := report.Comparisons[0]
	if c.Ratio != 0 {
		t.Errorf("zero-baseline ratio %v, want 0", c.Ratio)
	}
	if c.A.Mean != 0 || c.B.Mean != 11 {
		t.Errorf("summaries: A.Mean=%v B.Mean=%v", c.A.Mean, c.B.Mean)
	}
	if c.Test == nil {
		t.Error("two reps per side must still produce a t-test")
	}
}

// TestAnalyzeSkippedBenchmarkIsDropped pins the skipped-benchmark edge
// case: a benchmark measured under only one of the compared types (the
// SkipBenchmark() scenario) is dropped from the report; benchmarks with
// both sides still analyze, and MinReps reflects only analyzed benchmarks.
func TestAnalyzeSkippedBenchmarkIsDropped(t *testing.T) {
	fx := newFex(t)
	writeSyntheticLog(t, fx, "synth_skip", ""+
		"HDR|experiment=synth_skip|types=a,b|reps=1\n"+
		"NOTE|skipped s/only_a [b]\n"+
		"RUN|suite=s|bench=only_a|type=a|threads=1|rep=0|cycles=5\n"+
		"RUN|suite=s|bench=both|type=a|threads=1|rep=0|cycles=10\n"+
		"RUN|suite=s|bench=both|type=b|threads=1|rep=0|cycles=20\n")
	report, err := fx.Analyze("synth_skip", "cycles", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Comparisons) != 1 || report.Comparisons[0].Benchmark != "both" {
		t.Fatalf("comparisons %+v, want exactly [both]", report.Comparisons)
	}
	if got := report.Comparisons[0].Ratio; got != 2 {
		t.Errorf("ratio %v, want 2", got)
	}
	if report.MinReps != 1 {
		t.Errorf("MinReps %d, want 1 (single rep)", report.MinReps)
	}
	if report.Comparisons[0].Test != nil {
		t.Error("single-rep benchmark produced a t-test")
	}

	// When *every* benchmark is one-sided the analysis fails loudly
	// rather than returning an empty report.
	writeSyntheticLog(t, fx, "synth_allskip", ""+
		"HDR|experiment=synth_allskip|types=a,b|reps=1\n"+
		"RUN|suite=s|bench=only_a|type=a|threads=1|rep=0|cycles=5\n")
	if _, err := fx.Analyze("synth_allskip", "cycles", "a", "b"); err == nil ||
		!strings.Contains(err.Error(), "no benchmark has measurements for both") {
		t.Errorf("all-skipped analysis: %v", err)
	}
}

// TestAnalyzeMinThreadsSelection pins that analysis samples at the
// smallest thread count present, not across the whole sweep.
func TestAnalyzeMinThreadsSelection(t *testing.T) {
	fx := newFex(t)
	writeSyntheticLog(t, fx, "synth_threads", ""+
		"HDR|experiment=synth_threads|types=a,b|reps=1\n"+
		"RUN|suite=s|bench=x|type=a|threads=2|rep=0|cycles=100\n"+
		"RUN|suite=s|bench=x|type=b|threads=2|rep=0|cycles=400\n"+
		"RUN|suite=s|bench=x|type=a|threads=1|rep=0|cycles=10\n"+
		"RUN|suite=s|bench=x|type=b|threads=1|rep=0|cycles=30\n")
	report, err := fx.Analyze("synth_threads", "cycles", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Comparisons[0].Ratio; got != 3 {
		t.Errorf("ratio %v, want 3 (threads=1 samples only)", got)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	fx := newFex(t)
	if _, err := fx.Analyze("micro", "", "a", "b"); err == nil {
		t.Error("expected error without a stored run")
	}
	installAll(t, fx, "gcc-6.1")
	_ = runPhoenixSubset(t, fx, Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"array_read"},
		Input:      workload.SizeTest,
	})
	if _, err := fx.Analyze("micro", "no_such_metric", "gcc_native", "gcc_native"); err == nil {
		t.Error("expected error for unknown metric")
	}
	if _, err := fx.Analyze("micro", "", "gcc_native", "clang_native"); err == nil {
		t.Error("expected error for missing type samples")
	}
}
