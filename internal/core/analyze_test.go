package core

import (
	"strings"
	"testing"

	"fex/internal/workload"
)

func TestAnalyzeDetectsASanSlowdown(t *testing.T) {
	fx := newFex(t)
	installAll(t, fx, "gcc-6.1")
	_ = runPhoenixSubset(t, fx, Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native", "gcc_asan"},
		Benchmarks: []string{"array_read", "alloc_churn"},
		Input:      workload.SizeTest,
		Reps:       4,
	})
	// Modeled cycles are deterministic, so the ratio is exact and the
	// test degenerates to "difference with zero variance" (p = 0).
	report, err := fx.Analyze("micro", "cycles", "gcc_native", "gcc_asan")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Comparisons) != 2 {
		t.Fatalf("comparisons %d", len(report.Comparisons))
	}
	for _, c := range report.Comparisons {
		if c.Ratio <= 1 {
			t.Errorf("%s: asan/native ratio %v, want > 1", c.Benchmark, c.Ratio)
		}
		if c.Test == nil {
			t.Fatalf("%s: no t-test with 4 reps", c.Benchmark)
		}
		if !c.Significant(0.05) {
			t.Errorf("%s: exact modeled difference not significant (p=%v)", c.Benchmark, c.Test.P)
		}
	}
	if !strings.Contains(report.String(), "array_read") {
		t.Error("report rendering missing benchmark")
	}
}

func TestAnalyzeDefaultsToWallTime(t *testing.T) {
	fx := newFex(t)
	installAll(t, fx, "gcc-6.1")
	_ = runPhoenixSubset(t, fx, Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native", "gcc_asan"},
		Benchmarks: []string{"array_read"},
		Input:      workload.SizeTest,
		Reps:       3,
	})
	report, err := fx.Analyze("micro", "", "gcc_native", "gcc_asan")
	if err != nil {
		t.Fatal(err)
	}
	if report.Metric != "wall_ns" {
		t.Errorf("default metric %q", report.Metric)
	}
}

func TestAnalyzeSingleRepHasNoTest(t *testing.T) {
	fx := newFex(t)
	installAll(t, fx, "gcc-6.1")
	_ = runPhoenixSubset(t, fx, Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native", "gcc_asan"},
		Benchmarks: []string{"array_read"},
		Input:      workload.SizeTest,
	})
	report, err := fx.Analyze("micro", "cycles", "gcc_native", "gcc_asan")
	if err != nil {
		t.Fatal(err)
	}
	if report.Comparisons[0].Test != nil {
		t.Error("t-test produced from a single repetition")
	}
	if report.Comparisons[0].Significant(0.05) {
		t.Error("single-rep comparison reported significant")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	fx := newFex(t)
	if _, err := fx.Analyze("micro", "", "a", "b"); err == nil {
		t.Error("expected error without a stored run")
	}
	installAll(t, fx, "gcc-6.1")
	_ = runPhoenixSubset(t, fx, Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"array_read"},
		Input:      workload.SizeTest,
	})
	if _, err := fx.Analyze("micro", "no_such_metric", "gcc_native", "gcc_native"); err == nil {
		t.Error("expected error for unknown metric")
	}
	if _, err := fx.Analyze("micro", "", "gcc_native", "clang_native"); err == nil {
		t.Error("expected error for missing type samples")
	}
}
