// Package stats provides the statistical machinery FEX needs for sound
// performance evaluation: summary statistics, confidence intervals,
// percentiles, Welch's t-test, and a Kalibera–Jones-style estimate of the
// number of repetitions needed for a target confidence-interval width.
//
// The paper lists statistical analysis as future work ("We plan to integrate
// statistical numpy/scipy Python packages ... to allow for advanced
// statistical methods and hypothesis testing"); this package implements that
// functionality natively.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty reports that a computation was attempted on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Variance returns the unbiased (n-1) sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// CoV returns the coefficient of variation (stddev / mean).
func CoV(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, errors.New("stats: CoV undefined for zero mean")
	}
	s, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return s / m, nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	mn, _ := Min(xs)
	md, _ := Median(xs)
	mx, _ := Max(xs)
	return Summary{N: len(xs), Mean: mean, StdDev: sd, Min: mn, Median: md, Max: mx}, nil
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Level is the confidence level, e.g. 0.95.
	Level float64 `json:"level"`
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies within the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Overlaps reports whether the two intervals share at least one point.
// The boundary is inclusive: intervals that exactly touch ([1,2] and
// [2,3]) DO overlap — the shared endpoint is a value both intervals deem
// plausible, so an overlap-based significance rule must treat touching
// intervals as compatible with equality ("not significant"). Degenerate
// zero-width intervals (Lo == Hi, the zero-variance case) follow the same
// rule: [5,5] overlaps [5,5] but not [7,7].
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Disjoint reports whether the intervals share no point — the
// "separated confidence intervals" significance rule. It is the exact
// negation of Overlaps, so exactly-touching intervals are NOT disjoint
// and therefore never count as significant under the CI rule.
func (iv Interval) Disjoint(other Interval) bool { return !iv.Overlaps(other) }

// ConfidenceInterval returns the Student-t confidence interval for the mean
// of xs at the given level (e.g. 0.95). The sample must contain at least two
// observations.
func ConfidenceInterval(xs []float64, level float64) (Interval, error) {
	if len(xs) < 2 {
		return Interval{}, fmt.Errorf("stats: confidence interval needs >=2 samples, got %d", len(xs))
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v out of range (0,1)", level)
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	se := sd / math.Sqrt(float64(len(xs)))
	t := tQuantile(1-(1-level)/2, float64(len(xs)-1))
	return Interval{Lo: mean - t*se, Hi: mean + t*se, Level: level}, nil
}

// TTestResult describes the outcome of Welch's two-sample t-test.
type TTestResult struct {
	// T is the test statistic.
	T float64 `json:"t"`
	// DF is the Welch–Satterthwaite degrees of freedom.
	DF float64 `json:"df"`
	// P is the two-sided p-value.
	P float64 `json:"p"`
	// MeanDiff is mean(a) - mean(b).
	MeanDiff float64 `json:"mean_diff"`
}

// Significant reports whether the difference is significant at level alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// WelchTTest performs Welch's two-sample t-test on a and b (two-sided).
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs >=2 samples per group, got %d and %d", len(a), len(b))
	}
	ma, _ := Mean(a)
	mb, _ := Mean(b)
	va, _ := Variance(a)
	vb, _ := Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	denom := math.Sqrt(sa + sb)
	if denom == 0 {
		// Identical constant samples: no evidence of difference, or exact
		// difference with zero variance.
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1, MeanDiff: 0}, nil
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0, MeanDiff: ma - mb}, nil
	}
	t := (ma - mb) / denom
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * (1 - tCDF(math.Abs(t), df))
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p, MeanDiff: ma - mb}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// RequiredRepetitions estimates (in the spirit of Kalibera & Jones,
// "Rigorous benchmarking in reasonable time") how many repetitions are
// needed so the half-width of the level-confidence interval is at most
// relWidth × mean, given a pilot sample.
func RequiredRepetitions(pilot []float64, level, relWidth float64) (int, error) {
	if len(pilot) < 2 {
		return 0, fmt.Errorf("stats: pilot sample needs >=2 observations, got %d", len(pilot))
	}
	if relWidth <= 0 {
		return 0, fmt.Errorf("stats: relative width must be positive, got %v", relWidth)
	}
	mean, _ := Mean(pilot)
	if mean == 0 {
		return 0, errors.New("stats: pilot mean is zero")
	}
	sd, _ := StdDev(pilot)
	if sd == 0 {
		return 2, nil
	}
	target := math.Abs(relWidth * mean)
	half := func(n int) float64 {
		t := tQuantile(1-(1-level)/2, float64(n-1))
		return t * sd / math.Sqrt(float64(n))
	}
	// The half-width is monotone decreasing in n (the t quantile shrinks
	// with the degrees of freedom, 1/sqrt(n) shrinks with n), so the
	// smallest satisfying n is found by binary search — this runs once per
	// adaptive-repetition sweep, where a linear scan to 1e6 t-quantile
	// evaluations is far too slow.
	const maxN = 1_000_000
	if half(maxN) > target {
		return 0, errors.New("stats: required repetitions exceed 1e6; sample too noisy")
	}
	lo, hi := 2, maxN
	for lo < hi {
		mid := lo + (hi-lo)/2
		if half(mid) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// Normalize divides each element of xs by base and returns the ratios —
// the transformation behind "normalized runtime w.r.t. native GCC" plots.
func Normalize(xs []float64, base float64) ([]float64, error) {
	if base == 0 {
		return nil, errors.New("stats: cannot normalize by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out, nil
}

// --- Student-t distribution helpers -----------------------------------------

// tCDF returns P(T <= t) for Student's t distribution with df degrees of
// freedom, via the regularized incomplete beta function.
func tCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	ib := regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// tQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom (p in (0,1)), via bisection on tCDF.
func tQuantile(p, df float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x > (a+1)/(a+b+2) {
		// Use symmetry for better convergence.
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz's algorithm for the continued fraction.
	const eps = 1e-14
	const tiny = 1e-30
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -((a + float64(m)) * (a + b + float64(m)) * x) / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		f *= c * d
		if math.Abs(1-c*d) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
