package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("got %v, want ErrEmpty", err)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("geomean = %v, want 2", got)
	}
}

func TestGeoMeanRejectsNonPositive(t *testing.T) {
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("expected error for zero value")
	}
	if _, err := GeoMean([]float64{-1}); err == nil {
		t.Error("expected error for negative value")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sample variance with n-1 denominator: 32/7.
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v", v)
	}
	sd, _ := StdDev(xs)
	if !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev = %v", sd)
	}
}

func TestVarianceSingle(t *testing.T) {
	v, err := Variance([]float64{42})
	if err != nil || v != 0 {
		t.Errorf("variance single = %v, %v", v, err)
	}
}

func TestCoV(t *testing.T) {
	cov, err := CoV([]float64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0 {
		t.Errorf("CoV of constant sample = %v", cov)
	}
	if _, err := CoV([]float64{-1, 1}); err == nil {
		t.Error("expected error for zero-mean CoV")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != 1 || mx != 5 {
		t.Errorf("min=%v max=%v", mn, mx)
	}
}

func TestMedianOdd(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Errorf("median = %v", m)
	}
}

func TestMedianEven(t *testing.T) {
	m, _ := Median([]float64{1, 2, 3, 4})
	if m != 2.5 {
		t.Errorf("median = %v", m)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	p, err := Percentile(xs, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, 17.5, 1e-12) {
		t.Errorf("p25 = %v, want 17.5", p)
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{1, 2, 3}
	if p, _ := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p, _ := Percentile(xs, 100); p != 3 {
		t.Errorf("p100 = %v", p)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected error for p > 100")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_, _ = Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("summary %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestConfidenceIntervalContainsMean(t *testing.T) {
	xs := []float64{10, 11, 9, 10.5, 9.5, 10.2}
	iv, err := ConfidenceInterval(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := Mean(xs)
	if !iv.Contains(mean) {
		t.Errorf("interval [%v, %v] excludes mean %v", iv.Lo, iv.Hi, mean)
	}
}

func TestConfidenceIntervalWidthShrinks(t *testing.T) {
	small := []float64{9, 10, 11, 10}
	big := make([]float64, 0, 40)
	for i := 0; i < 10; i++ {
		big = append(big, small...)
	}
	ivSmall, err := ConfidenceInterval(small, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ivBig, err := ConfidenceInterval(big, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ivBig.Width() >= ivSmall.Width() {
		t.Errorf("more samples did not shrink CI: %v vs %v", ivBig.Width(), ivSmall.Width())
	}
}

func TestConfidenceIntervalErrors(t *testing.T) {
	if _, err := ConfidenceInterval([]float64{1}, 0.95); err == nil {
		t.Error("expected error for single sample")
	}
	if _, err := ConfidenceInterval([]float64{1, 2}, 1.5); err == nil {
		t.Error("expected error for bad level")
	}
}

func TestWelchTTestDetectsDifference(t *testing.T) {
	a := []float64{10.1, 10.2, 9.9, 10.0, 10.1, 9.8, 10.2, 10.0}
	b := []float64{12.1, 12.0, 11.9, 12.2, 12.1, 11.8, 12.0, 12.1}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.01) {
		t.Errorf("clearly different samples not significant: p=%v", res.P)
	}
	if res.MeanDiff >= 0 {
		t.Errorf("mean diff sign wrong: %v", res.MeanDiff)
	}
}

func TestWelchTTestNoDifference(t *testing.T) {
	a := []float64{10, 10.2, 9.8, 10.1, 9.9}
	b := []float64{10.05, 10.15, 9.85, 10.0, 9.95}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.01) {
		t.Errorf("similar samples reported significant: p=%v", res.P)
	}
}

func TestWelchTTestIdenticalConstant(t *testing.T) {
	res, err := WelchTTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("p = %v, want 1", res.P)
	}
}

func TestWelchTTestTooFewSamples(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error")
	}
}

func TestRequiredRepetitions(t *testing.T) {
	pilot := []float64{100, 102, 98, 101, 99}
	n, err := RequiredRepetitions(pilot, 0.95, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Errorf("n = %d", n)
	}
	// A looser target needs fewer repetitions.
	loose, err := RequiredRepetitions(pilot, 0.95, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if loose > n {
		t.Errorf("looser width requires more reps: %d > %d", loose, n)
	}
}

func TestRequiredRepetitionsZeroVariance(t *testing.T) {
	n, err := RequiredRepetitions([]float64{5, 5, 5}, 0.95, 0.01)
	if err != nil || n != 2 {
		t.Errorf("got %d, %v", n, err)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v", i, out[i])
		}
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("expected error for zero base")
	}
}

func TestTCDFMatchesKnownValues(t *testing.T) {
	// For df -> large, t distribution approaches the normal: CDF(1.96) ≈ 0.975.
	got := tCDF(1.96, 1000)
	if !almostEqual(got, 0.975, 0.002) {
		t.Errorf("tCDF(1.96, 1000) = %v", got)
	}
	// Known t table value: df=10, p=0.975 → t ≈ 2.228.
	q := tQuantile(0.975, 10)
	if !almostEqual(q, 2.228, 0.01) {
		t.Errorf("tQuantile(0.975, 10) = %v, want 2.228", q)
	}
}

func TestQuickMeanWithinMinMax(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m, err := Mean(clean)
		if err != nil {
			return false
		}
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	prop := func(xs []float64, a, b uint8) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		va, err1 := Percentile(clean, pa)
		vb, err2 := Percentile(clean, pb)
		return err1 == nil && err2 == nil && va <= vb+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRequiredRepetitionsMinimal pins the binary search's contract: the
// returned n is the *smallest* repetition count whose Student-t interval
// half-width meets the target — n satisfies it and n-1 does not.
func TestRequiredRepetitionsMinimal(t *testing.T) {
	halfWidth := func(pilot []float64, level float64, n int) float64 {
		sd, _ := StdDev(pilot)
		return tQuantile(1-(1-level)/2, float64(n-1)) * sd / math.Sqrt(float64(n))
	}
	pilots := [][]float64{
		{100, 102, 98, 101, 99},
		{100, 130, 75, 110, 92},
		{1, 2},
		{5, 5.01, 4.99, 5.02},
	}
	for _, pilot := range pilots {
		for _, level := range []float64{0.90, 0.95, 0.99} {
			for _, relWidth := range []float64{0.005, 0.05, 0.2} {
				n, err := RequiredRepetitions(pilot, level, relWidth)
				if err != nil {
					t.Fatalf("pilot %v level %v width %v: %v", pilot, level, relWidth, err)
				}
				mean, _ := Mean(pilot)
				target := relWidth * mean
				if got := halfWidth(pilot, level, n); got > target {
					t.Errorf("pilot %v level %v width %v: n=%d does not satisfy the target (%v > %v)",
						pilot, level, relWidth, n, got, target)
				}
				if n > 2 {
					if got := halfWidth(pilot, level, n-1); got <= target {
						t.Errorf("pilot %v level %v width %v: n=%d is not minimal (n-1 already satisfies)",
							pilot, level, relWidth, n)
					}
				}
			}
		}
	}
}

func TestRequiredRepetitionsTooNoisy(t *testing.T) {
	// Enormous dispersion with a microscopic target exceeds the 1e6 cap.
	if _, err := RequiredRepetitions([]float64{1, 10000}, 0.99, 1e-6); err == nil {
		t.Error("expected error for unattainable target")
	}
}

func TestRequiredRepetitionsErrors(t *testing.T) {
	if _, err := RequiredRepetitions([]float64{1}, 0.95, 0.05); err == nil {
		t.Error("expected error for single-observation pilot")
	}
	if _, err := RequiredRepetitions([]float64{1, 2}, 0.95, 0); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := RequiredRepetitions([]float64{-1, 1}, 0.95, 0.05); err == nil {
		t.Error("expected error for zero-mean pilot")
	}
}

// TestIntervalOverlapBoundary pins the inclusive overlap boundary the
// significance rule builds on: exactly-touching intervals OVERLAP (the
// shared endpoint is plausible for both means), and Disjoint is its
// exact negation — in both argument orders.
func TestIntervalOverlapBoundary(t *testing.T) {
	cases := []struct {
		name     string
		a, b     Interval
		overlaps bool
	}{
		{"separated", Interval{Lo: 1, Hi: 2}, Interval{Lo: 3, Hi: 4}, false},
		{"touching", Interval{Lo: 1, Hi: 2}, Interval{Lo: 2, Hi: 3}, true},
		{"overlapping", Interval{Lo: 1, Hi: 3}, Interval{Lo: 2, Hi: 4}, true},
		{"nested", Interval{Lo: 1, Hi: 10}, Interval{Lo: 4, Hi: 5}, true},
		{"identical", Interval{Lo: 1, Hi: 2}, Interval{Lo: 1, Hi: 2}, true},
		{"degenerate equal", Interval{Lo: 5, Hi: 5}, Interval{Lo: 5, Hi: 5}, true},
		{"degenerate apart", Interval{Lo: 5, Hi: 5}, Interval{Lo: 7, Hi: 7}, false},
		{"degenerate on edge", Interval{Lo: 5, Hi: 5}, Interval{Lo: 5, Hi: 9}, true},
	}
	for _, tc := range cases {
		for _, order := range []struct{ x, y Interval }{{tc.a, tc.b}, {tc.b, tc.a}} {
			if got := order.x.Overlaps(order.y); got != tc.overlaps {
				t.Errorf("%s: Overlaps(%v, %v) = %v, want %v", tc.name, order.x, order.y, got, tc.overlaps)
			}
			if got := order.x.Disjoint(order.y); got != !tc.overlaps {
				t.Errorf("%s: Disjoint(%v, %v) = %v, want %v", tc.name, order.x, order.y, got, !tc.overlaps)
			}
		}
	}
}

// TestWelchTTestZeroVarianceDifferentMeans covers the degenerate branch
// where both samples are constant but unequal: the difference is certain,
// so the statistic is signed infinity with p = 0, in both directions.
func TestWelchTTestZeroVarianceDifferentMeans(t *testing.T) {
	r, err := WelchTTest([]float64{2, 2, 2}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.T, 1) || r.P != 0 || r.MeanDiff != 1 {
		t.Fatalf("a>b constant samples: %+v, want T=+Inf P=0 MeanDiff=1", r)
	}
	r, err = WelchTTest([]float64{1, 1, 1}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.T, -1) || r.P != 0 || r.MeanDiff != -1 {
		t.Fatalf("a<b constant samples: %+v, want T=-Inf P=0 MeanDiff=-1", r)
	}
}

// TestEmptyInputErrors sweeps the descriptive statistics over an empty
// sample: every one must report ErrEmpty rather than a silent zero.
func TestEmptyInputErrors(t *testing.T) {
	if _, err := StdDev(nil); err == nil {
		t.Error("StdDev(nil) succeeded")
	}
	if _, err := CoV(nil); err == nil {
		t.Error("CoV(nil) succeeded")
	}
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) succeeded")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) succeeded")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) succeeded")
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) succeeded")
	}
}

// TestCoVZeroMean covers CoV's division guard.
func TestCoVZeroMean(t *testing.T) {
	if _, err := CoV([]float64{-1, 1}); err == nil {
		t.Error("CoV with zero mean succeeded")
	}
}

// TestTQuantileBounds covers the quantile's domain guards and midpoint.
func TestTQuantileBounds(t *testing.T) {
	if !math.IsNaN(tQuantile(0, 5)) || !math.IsNaN(tQuantile(1, 5)) {
		t.Error("tQuantile outside (0,1) must be NaN")
	}
	if q := tQuantile(0.5, 5); q != 0 {
		t.Errorf("tQuantile(0.5) = %v, want 0", q)
	}
}
