// Package remote models the multi-machine part of FEX's real-world
// experiments. The paper's Nginx run.py "pre-configures the server side,
// starts a client on a separate machine via SSH, waits for the experiment
// to finish, and fetches the logs" (§IV-B); distributed experiments are
// also listed as future work ("e.g., using the Fabric library").
//
// A Cluster holds named Hosts. A Host executes registered commands —
// in-process stand-ins for SSH sessions — and returns their textual log
// plus structured data. The transport injects configurable latency and
// failures so experiment code handles remote errors realistically.
package remote

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Common errors.
var (
	// ErrUnknownHost reports a lookup of an unregistered host.
	ErrUnknownHost = errors.New("remote: unknown host")
	// ErrUnknownCommand reports an unregistered command.
	ErrUnknownCommand = errors.New("remote: unknown command")
	// ErrUnreachable reports an injected connectivity failure.
	ErrUnreachable = errors.New("remote: host unreachable")
)

// Job is one remote command invocation.
type Job struct {
	// Command selects the registered handler ("loadgen", "fetch-logs", …).
	Command string
	// Args carries string parameters.
	Args map[string]string
}

// Output is a remote command's result.
type Output struct {
	// Log is the command's textual output (what "fetching the logs"
	// returns).
	Log string
	// Data carries structured measurements.
	Data map[string]float64
}

// Handler executes one command on a host.
type Handler func(ctx context.Context, job Job) (Output, error)

// Host is one machine of the cluster.
type Host struct {
	name string

	mu          sync.Mutex
	handlers    map[string]Handler
	latency     time.Duration
	cmdLatency  map[string]time.Duration
	unreachable bool
	outage      int // remaining contacts that fail before recovery
	hanging     bool
	hang        chan<- string
	corrupt     func(string) string
	logs        []string
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// RegisterCommand installs a command handler on the host.
func (h *Host) RegisterCommand(name string, fn Handler) error {
	if name == "" || fn == nil {
		return errors.New("remote: command requires name and handler")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[name] = fn
	return nil
}

// UnregisterCommand removes a command handler from the host (tearing
// down the SSH-session stand-in so per-run state the handler captured is
// released). Unknown names are a no-op.
func (h *Host) UnregisterCommand(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.handlers, name)
}

// SetLatency injects a per-invocation network delay.
func (h *Host) SetLatency(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency = d
}

// SetCommandLatency injects an additional delay on one command only —
// a per-command slow path (e.g. a slow run-cell on an overloaded host)
// on top of any host-wide SetLatency.
func (h *Host) SetCommandLatency(command string, d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cmdLatency == nil {
		h.cmdLatency = make(map[string]time.Duration)
	}
	h.cmdLatency[command] = d
}

// SetUnreachable toggles connectivity-failure injection.
func (h *Host) SetUnreachable(down bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.unreachable = down
}

// SetOutage injects a flapping schedule: the next n contacts (Run or
// Ping) fail with ErrUnreachable, after which the host recovers on its
// own. Overwrites any outage still in progress.
func (h *Host) SetOutage(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.outage = n
}

// SetHang injects a hung machine: every contact blocks until its
// context is cancelled and returns the context's error — the host
// accepted the connection and never answered. If notify is non-nil, the
// command name is sent on it (non-blocking) when a contact starts
// hanging, so tests can synchronize on "the host is now wedged" without
// sleeping. ClearHang removes the fault.
func (h *Host) SetHang(notify chan<- string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hanging = true
	h.hang = notify
}

// ClearHang removes a SetHang fault; contacts already blocked stay
// blocked until their context is cancelled.
func (h *Host) ClearHang() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hanging = false
	h.hang = nil
}

// SetCorruptOutput injects transfer corruption: fn rewrites the log
// output of every command *in transit*, after the host-side handler
// produced it and retained the pristine copy. nil disables the fault.
// Callers use it to prove the coordinator validates fetched data instead
// of trusting the wire.
func (h *Host) SetCorruptOutput(fn func(string) string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.corrupt = fn
}

// contact performs the transport preamble shared by Run and Ping under
// one fault-injection decision: pay the injected latency (the wire is
// slow whether or not the far end answers), consume one step of any
// outage schedule, then report the reachability verdict or a hang.
// A hang blocks until ctx is cancelled — the connection was accepted and
// never answered — which is what makes cancellation observable at the
// transport: deadline tests cancel ctx instead of sleeping real time.
func (h *Host) contact(ctx context.Context, command string) error {
	h.mu.Lock()
	latency := h.latency + h.cmdLatency[command]
	down := h.unreachable
	if h.outage > 0 {
		h.outage--
		down = true
	}
	hanging, hangNotify := h.hanging, h.hang
	h.mu.Unlock()
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if down {
		return fmt.Errorf("%w: %s", ErrUnreachable, h.name)
	}
	if hanging {
		if hangNotify != nil {
			select {
			case hangNotify <- command:
			default:
			}
		}
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// Ping probes host liveness without running a command — the reprobe a
// coordinator sends to a host in probation. It observes the same
// injected faults as Run: latency, outage schedules, unreachability,
// and hangs (a hung host's probe blocks until ctx is cancelled).
func (h *Host) Ping(ctx context.Context) error {
	return h.contact(ctx, "ping")
}

// Run executes a command on the host — the SSH-session stand-in. The
// command's log output is retained on the host until FetchLogs collects
// it.
//
// The handler races against ctx: when ctx is cancelled mid-execution,
// Run returns the context error immediately while the handler keeps
// running detached on the host (the SSH session dropped; the remote
// process does not know). A detached handler's log output is still
// retained host-side for FetchLogs, but its Output never reaches the
// caller.
func (h *Host) Run(ctx context.Context, job Job) (Output, error) {
	if err := h.contact(ctx, job.Command); err != nil {
		return Output{}, err
	}
	h.mu.Lock()
	corrupt := h.corrupt
	fn, ok := h.handlers[job.Command]
	h.mu.Unlock()
	if !ok {
		return Output{}, fmt.Errorf("%w: %q on %s", ErrUnknownCommand, job.Command, h.name)
	}
	type result struct {
		out Output
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := fn(ctx, job)
		if err == nil && out.Log != "" {
			h.mu.Lock()
			h.logs = append(h.logs, out.Log)
			h.mu.Unlock()
		}
		done <- result{out, err}
	}()
	var r result
	select {
	case r = <-done:
	case <-ctx.Done():
		return Output{}, ctx.Err()
	}
	if r.err != nil {
		return Output{}, fmt.Errorf("remote %s: %s: %w", h.name, job.Command, r.err)
	}
	// Corruption strikes the transfer, not the host: the retained log
	// above stays pristine while the caller receives the damaged copy.
	if corrupt != nil {
		r.out.Log = corrupt(r.out.Log)
	}
	return r.out, nil
}

// FetchLogs returns and clears the host's retained logs (the experiment's
// final "fetch the logs" step).
func (h *Host) FetchLogs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.logs
	h.logs = nil
	return out
}

// Cluster is a named set of hosts.
type Cluster struct {
	mu     sync.Mutex
	hosts  map[string]*Host
	subs   map[int]chan *Host
	subSeq int
}

// NewCluster returns an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{hosts: make(map[string]*Host), subs: make(map[int]chan *Host)}
}

// Subscribe returns a channel delivering every host subsequently added
// to the cluster (via AddHost or a first Ensure) and a cancel function.
// An in-flight run subscribes so hosts joining mid-run — a new name in
// -hosts-file, or an Ensure through the serve API — can absorb queued
// cells. Delivery is best-effort: if the subscriber's buffer is full the
// notification is dropped (the host is still in the cluster and visible
// to the next run).
func (c *Cluster) Subscribe(buf int) (<-chan *Host, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan *Host, buf)
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.subSeq
	c.subSeq++
	c.subs[id] = ch
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.subs, id)
	}
}

// addHost registers a fresh host and notifies subscribers, under c.mu.
func (c *Cluster) addHost(name string) *Host {
	h := &Host{name: name, handlers: make(map[string]Handler)}
	c.hosts[name] = h
	for _, ch := range c.subs {
		select {
		case ch <- h:
		default:
		}
	}
	return h
}

// AddHost registers a new host and returns it.
func (c *Cluster) AddHost(name string) (*Host, error) {
	if name == "" {
		return nil, errors.New("remote: host requires a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.hosts[name]; dup {
		return nil, fmt.Errorf("remote: duplicate host %q", name)
	}
	return c.addHost(name), nil
}

// Ensure returns the named host, registering it first if it does not
// exist yet — how the CLI materializes `-hosts h1,h2` into cluster
// members on first use.
func (c *Cluster) Ensure(name string) (*Host, error) {
	if name == "" {
		return nil, errors.New("remote: host requires a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hosts[name]; ok {
		return h, nil
	}
	return c.addHost(name), nil
}

// Host looks up a host by name.
func (c *Cluster) Host(name string) (*Host, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	return h, nil
}

// Hosts returns the registered host names, sorted.
func (c *Cluster) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.hosts))
	for n := range c.hosts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
