// Package remote models the multi-machine part of FEX's real-world
// experiments. The paper's Nginx run.py "pre-configures the server side,
// starts a client on a separate machine via SSH, waits for the experiment
// to finish, and fetches the logs" (§IV-B); distributed experiments are
// also listed as future work ("e.g., using the Fabric library").
//
// A Cluster holds named Hosts. A Host executes registered commands —
// in-process stand-ins for SSH sessions — and returns their textual log
// plus structured data. The transport injects configurable latency and
// failures so experiment code handles remote errors realistically.
package remote

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Common errors.
var (
	// ErrUnknownHost reports a lookup of an unregistered host.
	ErrUnknownHost = errors.New("remote: unknown host")
	// ErrUnknownCommand reports an unregistered command.
	ErrUnknownCommand = errors.New("remote: unknown command")
	// ErrUnreachable reports an injected connectivity failure.
	ErrUnreachable = errors.New("remote: host unreachable")
)

// Job is one remote command invocation.
type Job struct {
	// Command selects the registered handler ("loadgen", "fetch-logs", …).
	Command string
	// Args carries string parameters.
	Args map[string]string
}

// Output is a remote command's result.
type Output struct {
	// Log is the command's textual output (what "fetching the logs"
	// returns).
	Log string
	// Data carries structured measurements.
	Data map[string]float64
}

// Handler executes one command on a host.
type Handler func(ctx context.Context, job Job) (Output, error)

// Host is one machine of the cluster.
type Host struct {
	name string

	mu          sync.Mutex
	handlers    map[string]Handler
	latency     time.Duration
	unreachable bool
	corrupt     func(string) string
	logs        []string
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// RegisterCommand installs a command handler on the host.
func (h *Host) RegisterCommand(name string, fn Handler) error {
	if name == "" || fn == nil {
		return errors.New("remote: command requires name and handler")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[name] = fn
	return nil
}

// UnregisterCommand removes a command handler from the host (tearing
// down the SSH-session stand-in so per-run state the handler captured is
// released). Unknown names are a no-op.
func (h *Host) UnregisterCommand(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.handlers, name)
}

// SetLatency injects a per-invocation network delay.
func (h *Host) SetLatency(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency = d
}

// SetUnreachable toggles connectivity-failure injection.
func (h *Host) SetUnreachable(down bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.unreachable = down
}

// SetCorruptOutput injects transfer corruption: fn rewrites the log
// output of every command *in transit*, after the host-side handler
// produced it and retained the pristine copy. nil disables the fault.
// Callers use it to prove the coordinator validates fetched data instead
// of trusting the wire.
func (h *Host) SetCorruptOutput(fn func(string) string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.corrupt = fn
}

// Run executes a command on the host — the SSH-session stand-in. The
// command's log output is retained on the host until FetchLogs collects
// it.
func (h *Host) Run(ctx context.Context, job Job) (Output, error) {
	h.mu.Lock()
	latency := h.latency
	down := h.unreachable
	corrupt := h.corrupt
	fn, ok := h.handlers[job.Command]
	h.mu.Unlock()
	if down {
		return Output{}, fmt.Errorf("%w: %s", ErrUnreachable, h.name)
	}
	if !ok {
		return Output{}, fmt.Errorf("%w: %q on %s", ErrUnknownCommand, job.Command, h.name)
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			return Output{}, ctx.Err()
		}
	}
	out, err := fn(ctx, job)
	if err != nil {
		return Output{}, fmt.Errorf("remote %s: %s: %w", h.name, job.Command, err)
	}
	if out.Log != "" {
		h.mu.Lock()
		h.logs = append(h.logs, out.Log)
		h.mu.Unlock()
	}
	// Corruption strikes the transfer, not the host: the retained log
	// above stays pristine while the caller receives the damaged copy.
	if corrupt != nil {
		out.Log = corrupt(out.Log)
	}
	return out, nil
}

// FetchLogs returns and clears the host's retained logs (the experiment's
// final "fetch the logs" step).
func (h *Host) FetchLogs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.logs
	h.logs = nil
	return out
}

// Cluster is a named set of hosts.
type Cluster struct {
	mu    sync.Mutex
	hosts map[string]*Host
}

// NewCluster returns an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{hosts: make(map[string]*Host)}
}

// addHost registers a fresh host under c.mu.
func (c *Cluster) addHost(name string) *Host {
	h := &Host{name: name, handlers: make(map[string]Handler)}
	c.hosts[name] = h
	return h
}

// AddHost registers a new host and returns it.
func (c *Cluster) AddHost(name string) (*Host, error) {
	if name == "" {
		return nil, errors.New("remote: host requires a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.hosts[name]; dup {
		return nil, fmt.Errorf("remote: duplicate host %q", name)
	}
	return c.addHost(name), nil
}

// Ensure returns the named host, registering it first if it does not
// exist yet — how the CLI materializes `-hosts h1,h2` into cluster
// members on first use.
func (c *Cluster) Ensure(name string) (*Host, error) {
	if name == "" {
		return nil, errors.New("remote: host requires a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hosts[name]; ok {
		return h, nil
	}
	return c.addHost(name), nil
}

// Host looks up a host by name.
func (c *Cluster) Host(name string) (*Host, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	return h, nil
}

// Hosts returns the registered host names, sorted.
func (c *Cluster) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.hosts))
	for n := range c.hosts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
