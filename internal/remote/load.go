package remote

// Per-host load collection for the coordinator's placement decisions.
// The cluster scheduler reacts to faults (probation, eviction); the
// LoadCollector is the proactive half: it tracks how many cells are in
// flight on each host and keeps exponentially-weighted moving averages
// of recent cell durations and probe round-trips, so placement can rank
// hosts by expected finish time instead of treating every idle host as
// equal. A chronically slow host — loaded, distant, or underpowered,
// but not faulty — then absorbs proportionally fewer cells.
//
// Snapshots are throttled: Sample returns a cached snapshot until
// minInterval has elapsed on the injected clock since the host's last
// refresh, so high-frequency callers (per-placement scoring, progress
// events) cannot turn load observation into overhead. The collector is
// event-driven and reads only Clock.Now — it never arms timers — so a
// virtual clock drives it deterministically without disturbing the
// scheduler's pending-timer accounting.

import (
	"sync"
	"time"

	"fex/internal/clock"
)

// ewmaNum/ewmaDen set the EWMA smoothing factor (alpha = 3/10): new
// observations move the average by 30%, so a recovering host sheds its
// slow history within a few cells while one outlier cannot erase it.
const (
	ewmaNum = 3
	ewmaDen = 10
)

// LoadSample is one host's published load snapshot.
type LoadSample struct {
	// InFlight is the number of cells running on the host at the last
	// refresh.
	InFlight int
	// CellEWMA is the moving average of the host's recent cell
	// durations; zero until the first completed cell.
	CellEWMA time.Duration
	// RTTEWMA is the moving average of recent probe round-trips; zero
	// until the first observed probe.
	RTTEWMA time.Duration
	// Cells counts duration observations contributing to CellEWMA.
	Cells int
}

// hostLoad is one host's internal accumulator plus its published,
// throttled snapshot.
type hostLoad struct {
	inFlight int
	cellEWMA time.Duration
	rttEWMA  time.Duration
	cells    int

	published   LoadSample
	publishedAt time.Time
	havePublish bool
}

// LoadCollector accumulates per-host load signals and publishes
// throttled snapshots. Safe for concurrent use.
type LoadCollector struct {
	mu          sync.Mutex
	clk         clock.Clock
	minInterval time.Duration
	hosts       map[string]*hostLoad
	refreshes   int
}

// NewLoadCollector returns a collector sampling on clk. minInterval
// bounds the snapshot refresh rate per host; non-positive disables
// throttling (every Sample refreshes).
func NewLoadCollector(clk clock.Clock, minInterval time.Duration) *LoadCollector {
	return &LoadCollector{
		clk:         clk,
		minInterval: minInterval,
		hosts:       make(map[string]*hostLoad),
	}
}

// host returns the accumulator for name, creating it on first use.
// Called with mu held.
func (c *LoadCollector) host(name string) *hostLoad {
	h := c.hosts[name]
	if h == nil {
		h = &hostLoad{}
		c.hosts[name] = h
	}
	return h
}

// JobStarted records one more cell in flight on the host.
func (c *LoadCollector) JobStarted(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.host(name).inFlight++
}

// JobFinished records one cell leaving the host (completed or failed).
func (c *LoadCollector) JobFinished(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h := c.host(name); h.inFlight > 0 {
		h.inFlight--
	}
}

// ObserveDuration folds one completed cell's duration into the host's
// EWMA. The first observation seeds the average directly.
func (c *LoadCollector) ObserveDuration(name string, d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.host(name)
	if h.cells == 0 {
		h.cellEWMA = d
	} else {
		h.cellEWMA += (d - h.cellEWMA) * ewmaNum / ewmaDen
	}
	h.cells++
}

// ObserveRTT folds one probe round-trip into the host's RTT EWMA.
func (c *LoadCollector) ObserveRTT(name string, d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.host(name)
	if h.rttEWMA == 0 {
		h.rttEWMA = d
	} else {
		h.rttEWMA += (d - h.rttEWMA) * ewmaNum / ewmaDen
	}
}

// Sample returns the host's load snapshot. Within minInterval of the
// host's previous refresh the cached snapshot is returned unchanged;
// past it the snapshot is recomputed from the live accumulators.
func (c *LoadCollector) Sample(name string) LoadSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.host(name)
	now := c.clk.Now()
	if h.havePublish && c.minInterval > 0 && now.Sub(h.publishedAt) < c.minInterval {
		return h.published
	}
	h.published = LoadSample{
		InFlight: h.inFlight,
		CellEWMA: h.cellEWMA,
		RTTEWMA:  h.rttEWMA,
		Cells:    h.cells,
	}
	h.publishedAt = now
	h.havePublish = true
	c.refreshes++
	return h.published
}

// Refreshes counts snapshot recomputations across all hosts — the
// observable the throttling tests pin: however often Sample is called,
// refreshes are bounded by elapsed time over minInterval.
func (c *LoadCollector) Refreshes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshes
}
