package remote

import (
	"testing"
	"time"

	"fex/internal/clock"
)

// TestLoadCollectorThrottlesSampling pins the sampling rate bound: on a
// virtual clock, any number of Sample calls within minInterval performs
// exactly one snapshot refresh, and refreshes never exceed one per
// elapsed interval — the load collector cannot become per-placement
// overhead no matter how often the scheduler scores hosts.
func TestLoadCollectorThrottlesSampling(t *testing.T) {
	start := time.Date(2017, 6, 26, 0, 0, 0, 0, time.UTC)
	vc := clock.NewVirtual(start)
	const interval = 100 * time.Millisecond
	c := NewLoadCollector(vc, interval)

	c.JobStarted("w1")
	for i := 0; i < 50; i++ {
		c.ObserveDuration("w1", time.Duration(i+1)*time.Millisecond)
		if got := c.Sample("w1"); got.InFlight != 1 {
			t.Fatalf("InFlight = %d, want 1", got.InFlight)
		}
	}
	if got := c.Refreshes(); got != 1 {
		t.Fatalf("50 samples within one interval refreshed %d times, want exactly 1", got)
	}

	// The cached snapshot is from the first refresh (one observation had
	// landed): the other 49 stay unpublished until the interval elapses.
	if got := c.Sample("w1").Cells; got != 1 {
		t.Fatalf("throttled snapshot shows %d cells, want 1 (first-refresh cache)", got)
	}

	vc.Advance(interval)
	if got := c.Sample("w1"); got.Cells != 50 || got.CellEWMA == 0 {
		t.Fatalf("post-interval snapshot = %+v, want 50 cells with a nonzero EWMA", got)
	}
	if got := c.Refreshes(); got != 2 {
		t.Fatalf("refreshes = %d after one interval, want 2", got)
	}

	// Rate bound over many intervals: N advances allow at most N more
	// refreshes regardless of call volume.
	for i := 0; i < 10; i++ {
		vc.Advance(interval)
		for j := 0; j < 20; j++ {
			c.Sample("w1")
		}
	}
	if got := c.Refreshes(); got != 12 {
		t.Fatalf("refreshes = %d after 10 more intervals, want 12", got)
	}

	// The collector never arms timers: a virtual clock sees no pending
	// registrations, so it cannot disturb scheduler timer accounting.
	if got := vc.Pending(); got != 0 {
		t.Fatalf("collector left %d pending virtual timers, want 0", got)
	}
}

// TestLoadCollectorEWMA covers the moving averages: the first
// observation seeds the average, later ones move it by alpha, and RTT
// and duration averages are independent.
func TestLoadCollectorEWMA(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	c := NewLoadCollector(vc, 0) // no throttle: every Sample refreshes

	c.ObserveDuration("w1", 100*time.Millisecond)
	if got := c.Sample("w1").CellEWMA; got != 100*time.Millisecond {
		t.Fatalf("first observation EWMA = %v, want 100ms (seeded directly)", got)
	}
	c.ObserveDuration("w1", 200*time.Millisecond)
	// 100ms + (200ms-100ms)*3/10 = 130ms
	if got := c.Sample("w1").CellEWMA; got != 130*time.Millisecond {
		t.Fatalf("EWMA after 100ms,200ms = %v, want 130ms", got)
	}

	c.ObserveRTT("w1", 10*time.Millisecond)
	c.ObserveRTT("w1", 20*time.Millisecond)
	if got := c.Sample("w1").RTTEWMA; got != 13*time.Millisecond {
		t.Fatalf("RTT EWMA = %v, want 13ms", got)
	}
	if got := c.Sample("w1").CellEWMA; got != 130*time.Millisecond {
		t.Fatalf("RTT observations moved the cell EWMA to %v", got)
	}

	// Unknown hosts sample as zero values rather than erroring.
	if got := c.Sample("nowhere"); got != (LoadSample{}) {
		t.Fatalf("unknown host sample = %+v, want zero", got)
	}

	// JobFinished never underflows the gauge.
	c.JobFinished("w1")
	if got := c.Sample("w1").InFlight; got != 0 {
		t.Fatalf("InFlight after spurious finish = %d, want 0", got)
	}
}
