package remote

import (
	"context"
	"errors"
	"testing"
	"time"
)

func testHost(t *testing.T) *Host {
	t.Helper()
	c := NewCluster()
	h, err := c.AddHost("client1")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRunCommand(t *testing.T) {
	h := testHost(t)
	err := h.RegisterCommand("echo", func(ctx context.Context, job Job) (Output, error) {
		return Output{Log: "ran " + job.Args["what"], Data: map[string]float64{"n": 1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Run(context.Background(), Job{Command: "echo", Args: map[string]string{"what": "loadgen"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Log != "ran loadgen" || out.Data["n"] != 1 {
		t.Errorf("output %+v", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	h := testHost(t)
	_, err := h.Run(context.Background(), Job{Command: "nope"})
	if !errors.Is(err, ErrUnknownCommand) {
		t.Errorf("got %v", err)
	}
}

func TestUnreachableHost(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.SetUnreachable(true)
	if _, err := h.Run(context.Background(), Job{Command: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("got %v", err)
	}
	h.SetUnreachable(false)
	if _, err := h.Run(context.Background(), Job{Command: "x"}); err != nil {
		t.Errorf("recovery: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.SetLatency(50 * time.Millisecond)
	start := time.Now()
	if _, err := h.Run(context.Background(), Job{Command: "x"}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("latency not applied")
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.SetLatency(5 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := h.Run(ctx, Job{Command: "x"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v", err)
	}
}

func TestCommandErrorWrapped(t *testing.T) {
	h := testHost(t)
	sentinel := errors.New("remote failure")
	_ = h.RegisterCommand("fail", func(context.Context, Job) (Output, error) {
		return Output{}, sentinel
	})
	_, err := h.Run(context.Background(), Job{Command: "fail"})
	if !errors.Is(err, sentinel) {
		t.Errorf("got %v", err)
	}
}

func TestFetchLogsDrains(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) {
		return Output{Log: "entry"}, nil
	})
	ctx := context.Background()
	_, _ = h.Run(ctx, Job{Command: "x"})
	_, _ = h.Run(ctx, Job{Command: "x"})
	logs := h.FetchLogs()
	if len(logs) != 2 {
		t.Errorf("logs %v", logs)
	}
	if len(h.FetchLogs()) != 0 {
		t.Error("logs not drained")
	}
}

func TestRegisterValidation(t *testing.T) {
	h := testHost(t)
	if err := h.RegisterCommand("", nil); err == nil {
		t.Error("expected error")
	}
}

func TestClusterHosts(t *testing.T) {
	c := NewCluster()
	if _, err := c.AddHost("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("a"); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := c.AddHost(""); err == nil {
		t.Error("empty host name accepted")
	}
	hosts := c.Hosts()
	if len(hosts) != 2 || hosts[0] != "a" {
		t.Errorf("hosts %v", hosts)
	}
	if _, err := c.Host("missing"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("got %v", err)
	}
}

func TestClusterEnsure(t *testing.T) {
	c := NewCluster()
	h1, err := c.Ensure("w1")
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Ensure("w1")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != again {
		t.Error("Ensure created a second host for the same name")
	}
	if _, err := c.Ensure(""); err == nil {
		t.Error("empty host name accepted")
	}
	pre, err := c.AddHost("w2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Ensure("w2")
	if err != nil {
		t.Fatal(err)
	}
	if got != pre {
		t.Error("Ensure did not return the AddHost-registered host")
	}
}

func TestUnregisterCommand(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.UnregisterCommand("x")
	if _, err := h.Run(context.Background(), Job{Command: "x"}); !errors.Is(err, ErrUnknownCommand) {
		t.Errorf("got %v", err)
	}
	h.UnregisterCommand("never-registered") // no-op
}
