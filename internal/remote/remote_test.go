package remote

import (
	"context"
	"errors"
	"testing"
	"time"
)

func testHost(t *testing.T) *Host {
	t.Helper()
	c := NewCluster()
	h, err := c.AddHost("client1")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRunCommand(t *testing.T) {
	h := testHost(t)
	err := h.RegisterCommand("echo", func(ctx context.Context, job Job) (Output, error) {
		return Output{Log: "ran " + job.Args["what"], Data: map[string]float64{"n": 1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Run(context.Background(), Job{Command: "echo", Args: map[string]string{"what": "loadgen"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Log != "ran loadgen" || out.Data["n"] != 1 {
		t.Errorf("output %+v", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	h := testHost(t)
	_, err := h.Run(context.Background(), Job{Command: "nope"})
	if !errors.Is(err, ErrUnknownCommand) {
		t.Errorf("got %v", err)
	}
}

func TestUnreachableHost(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.SetUnreachable(true)
	if _, err := h.Run(context.Background(), Job{Command: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("got %v", err)
	}
	h.SetUnreachable(false)
	if _, err := h.Run(context.Background(), Job{Command: "x"}); err != nil {
		t.Errorf("recovery: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.SetLatency(50 * time.Millisecond)
	start := time.Now()
	if _, err := h.Run(context.Background(), Job{Command: "x"}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("latency not applied")
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.SetLatency(5 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := h.Run(ctx, Job{Command: "x"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v", err)
	}
}

func TestCommandErrorWrapped(t *testing.T) {
	h := testHost(t)
	sentinel := errors.New("remote failure")
	_ = h.RegisterCommand("fail", func(context.Context, Job) (Output, error) {
		return Output{}, sentinel
	})
	_, err := h.Run(context.Background(), Job{Command: "fail"})
	if !errors.Is(err, sentinel) {
		t.Errorf("got %v", err)
	}
}

func TestFetchLogsDrains(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) {
		return Output{Log: "entry"}, nil
	})
	ctx := context.Background()
	_, _ = h.Run(ctx, Job{Command: "x"})
	_, _ = h.Run(ctx, Job{Command: "x"})
	logs := h.FetchLogs()
	if len(logs) != 2 {
		t.Errorf("logs %v", logs)
	}
	if len(h.FetchLogs()) != 0 {
		t.Error("logs not drained")
	}
}

func TestRegisterValidation(t *testing.T) {
	h := testHost(t)
	if err := h.RegisterCommand("", nil); err == nil {
		t.Error("expected error")
	}
}

func TestClusterHosts(t *testing.T) {
	c := NewCluster()
	if _, err := c.AddHost("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("a"); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := c.AddHost(""); err == nil {
		t.Error("empty host name accepted")
	}
	hosts := c.Hosts()
	if len(hosts) != 2 || hosts[0] != "a" {
		t.Errorf("hosts %v", hosts)
	}
	if _, err := c.Host("missing"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("got %v", err)
	}
}

func TestClusterEnsure(t *testing.T) {
	c := NewCluster()
	h1, err := c.Ensure("w1")
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Ensure("w1")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != again {
		t.Error("Ensure created a second host for the same name")
	}
	if _, err := c.Ensure(""); err == nil {
		t.Error("empty host name accepted")
	}
	pre, err := c.AddHost("w2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Ensure("w2")
	if err != nil {
		t.Fatal(err)
	}
	if got != pre {
		t.Error("Ensure did not return the AddHost-registered host")
	}
}

func TestOutageScheduleRecovers(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.SetOutage(2)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := h.Run(ctx, Job{Command: "x"}); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("contact %d: got %v, want ErrUnreachable", i+1, err)
		}
	}
	if _, err := h.Run(ctx, Job{Command: "x"}); err != nil {
		t.Fatalf("host did not recover after outage: %v", err)
	}
}

func TestOutageConsumedByPing(t *testing.T) {
	h := testHost(t)
	h.SetOutage(1)
	ctx := context.Background()
	if err := h.Ping(ctx); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("first ping: got %v, want ErrUnreachable", err)
	}
	if err := h.Ping(ctx); err != nil {
		t.Fatalf("second ping: %v", err)
	}
}

func TestPingUnreachableAndRecovery(t *testing.T) {
	h := testHost(t)
	h.SetUnreachable(true)
	if err := h.Ping(context.Background()); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v", err)
	}
	h.SetUnreachable(false)
	if err := h.Ping(context.Background()); err != nil {
		t.Fatalf("recovered ping: %v", err)
	}
}

func TestHangBlocksUntilCancel(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	started := make(chan string, 1)
	h.SetHang(started)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := h.Run(ctx, Job{Command: "x"})
		errc <- err
	}()
	select {
	case cmd := <-started:
		if cmd != "x" {
			t.Fatalf("hang notified command %q", cmd)
		}
	case <-time.After(time.Second):
		t.Fatal("hang never started")
	}
	select {
	case err := <-errc:
		t.Fatalf("hung Run returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	h.ClearHang()
	if _, err := h.Run(context.Background(), Job{Command: "x"}); err != nil {
		t.Fatalf("ClearHang did not restore the host: %v", err)
	}
}

func TestHangAppliesToPing(t *testing.T) {
	h := testHost(t)
	h.SetHang(nil)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- h.Ping(ctx) }()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func TestCommandLatencyOnlyAffectsThatCommand(t *testing.T) {
	h := testHost(t)
	noop := func(context.Context, Job) (Output, error) { return Output{}, nil }
	_ = h.RegisterCommand("slow", noop)
	_ = h.RegisterCommand("fast", noop)
	h.SetCommandLatency("slow", 30*time.Millisecond)
	ctx := context.Background()
	start := time.Now()
	if _, err := h.Run(ctx, Job{Command: "fast"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("fast command took %v", d)
	}
	start = time.Now()
	if _, err := h.Run(ctx, Job{Command: "slow"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("slow command took %v, latency not applied", d)
	}
}

func TestLatencyPaidBeforeReachabilityVerdict(t *testing.T) {
	// The wire is slow whether or not the far end answers: an
	// unreachable host still costs the injected latency, and a caller
	// whose ctx expires during it sees the ctx error, not ErrUnreachable.
	h := testHost(t)
	h.SetLatency(5 * time.Second)
	h.SetUnreachable(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := h.Run(ctx, Job{Command: "x"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v, want DeadlineExceeded", err)
	}
}

func TestCancellationObservableDuringHandler(t *testing.T) {
	// A handler that ignores ctx cannot wedge the transport: Run
	// returns the ctx error while the handler finishes detached, and
	// its log is still retained host-side.
	h := testHost(t)
	release := make(chan struct{})
	_ = h.RegisterCommand("stuck", func(context.Context, Job) (Output, error) {
		<-release
		return Output{Log: "late"}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := h.Run(ctx, Job{Command: "stuck"})
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Run did not observe cancellation during handler execution")
	}
	close(release)
	deadline := time.Now().Add(time.Second)
	for len(h.FetchLogs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detached handler's log never retained")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClusterSubscribeDeliversJoins(t *testing.T) {
	c := NewCluster()
	if _, err := c.AddHost("pre"); err != nil {
		t.Fatal(err)
	}
	ch, cancel := c.Subscribe(4)
	select {
	case h := <-ch:
		t.Fatalf("subscription delivered pre-existing host %s", h.Name())
	default:
	}
	if _, err := c.Ensure("joined"); err != nil {
		t.Fatal(err)
	}
	select {
	case h := <-ch:
		if h.Name() != "joined" {
			t.Fatalf("got %s", h.Name())
		}
	case <-time.After(time.Second):
		t.Fatal("join not delivered")
	}
	if _, err := c.Ensure("joined"); err != nil { // already known: no event
		t.Fatal(err)
	}
	select {
	case h := <-ch:
		t.Fatalf("re-Ensure delivered duplicate join %s", h.Name())
	default:
	}
	cancel()
	if _, err := c.AddHost("after-cancel"); err != nil {
		t.Fatal(err)
	}
	select {
	case h, ok := <-ch:
		if ok {
			t.Fatalf("cancelled subscription received %s", h.Name())
		}
	default:
	}
}

func TestUnregisterCommand(t *testing.T) {
	h := testHost(t)
	_ = h.RegisterCommand("x", func(context.Context, Job) (Output, error) { return Output{}, nil })
	h.UnregisterCommand("x")
	if _, err := h.Run(context.Background(), Job{Command: "x"}); !errors.Is(err, ErrUnknownCommand) {
		t.Errorf("got %v", err)
	}
	h.UnregisterCommand("never-registered") // no-op
}
