// Package security implements the RIPE runtime intrusion prevention
// evaluator (Wilander et al., ACSAC 2011) as FEX's security-experiment
// substrate. "At its core, RIPE is a C program that tries to attack itself
// in a variety of ways (with 850 possible attacks in total)" (§IV-C).
//
// The attack matrix is the cross product of RIPE's dimensions —
// overflow technique × attack code × target location/code-pointer ×
// abused C function — restricted by structural feasibility rules, yielding
// exactly 850 attack forms:
//
//	shellcode (file-dropper)   2 techniques × 15 loc/target pairs × 10 functions = 300
//	shellcode (shell-spawner)  2 × 15 × 10                                       = 300
//	return-into-libc           2 × 10 pairs (ret, funcptr×5, longjmp×4) × 10     = 200
//	ROP                        direct only × 5 pairs (ret, longjmp×4) × 10       =  50
//
// Whether an attack succeeds is decided by a defense model evaluated
// against the binary's toolchain.SecurityProfile, calibrated to the
// paper's measured configuration ("Ubuntu 16.04 with disabled ASLR and
// building with disabled stack canaries and enabled executable stack"):
// GCC 64 successful / 786 failed, Clang 38 / 812 — Clang's hardened
// BSS/Data segment layout blocks indirect attacks through buffers in
// those segments, which is where most surviving attacks live.
package security

import (
	"fmt"
	"sort"

	"fex/internal/toolchain"
)

// Technique is RIPE's overflow technique dimension.
type Technique int

// Overflow techniques.
const (
	// Direct overflows run contiguously from the buffer onto the target.
	Direct Technique = iota + 1
	// Indirect overflows first corrupt a generic pointer, then write
	// through it — this crosses memory segments.
	Indirect
)

// String returns the technique name.
func (t Technique) String() string {
	if t == Direct {
		return "direct"
	}
	return "indirect"
}

// AttackCode is RIPE's attack-code dimension.
type AttackCode int

// Attack payloads.
const (
	// ShellcodeFile is injected code that creates a dummy file — the only
	// shellcode the paper observed succeeding.
	ShellcodeFile AttackCode = iota + 1
	// ShellcodeShell is injected code that spawns an interactive shell.
	ShellcodeShell
	// ReturnIntoLibc redirects control into an existing libc function.
	ReturnIntoLibc
	// ROP chains return-oriented gadgets.
	ROP
)

// String returns the payload name.
func (a AttackCode) String() string {
	switch a {
	case ShellcodeFile:
		return "shellcode-file"
	case ShellcodeShell:
		return "shellcode-shell"
	case ReturnIntoLibc:
		return "return-into-libc"
	case ROP:
		return "rop"
	default:
		return fmt.Sprintf("AttackCode(%d)", int(a))
	}
}

// Location is the memory segment holding the vulnerable buffer.
type Location int

// Buffer locations.
const (
	Stack Location = iota + 1
	Heap
	BSS
	Data
)

// String returns the segment name.
func (l Location) String() string {
	switch l {
	case Stack:
		return "stack"
	case Heap:
		return "heap"
	case BSS:
		return "bss"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Target is the code pointer the attack overwrites.
type Target int

// Target code pointers.
const (
	RetAddr Target = iota + 1
	BasePointer
	FuncPtr
	FuncPtrParam
	LongjmpBuf
	StructFuncPtr
)

// String returns the target name.
func (t Target) String() string {
	switch t {
	case RetAddr:
		return "ret"
	case BasePointer:
		return "baseptr"
	case FuncPtr:
		return "funcptr"
	case FuncPtrParam:
		return "funcptr-param"
	case LongjmpBuf:
		return "longjmpbuf"
	case StructFuncPtr:
		return "struct-funcptr"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// Function is the abused C function — RIPE's ten overflow vehicles.
type Function int

// Abused functions.
const (
	Memcpy Function = iota + 1
	Strcpy
	Strncpy
	Sprintf
	Snprintf
	Strcat
	Strncat
	Sscanf
	Fscanf
	HomebrewLoop
)

// String returns the function name.
func (f Function) String() string {
	switch f {
	case Memcpy:
		return "memcpy"
	case Strcpy:
		return "strcpy"
	case Strncpy:
		return "strncpy"
	case Sprintf:
		return "sprintf"
	case Snprintf:
		return "snprintf"
	case Strcat:
		return "strcat"
	case Strncat:
		return "strncat"
	case Sscanf:
		return "sscanf"
	case Fscanf:
		return "fscanf"
	case HomebrewLoop:
		return "homebrew"
	default:
		return fmt.Sprintf("Function(%d)", int(f))
	}
}

// boundedFunctions truncate at the destination size and can never
// overflow.
var boundedFunctions = map[Function]bool{
	Strncpy: true, Snprintf: true, Strncat: true, Fscanf: true,
}

// allFunctions lists the ten abused functions.
func allFunctions() []Function {
	return []Function{
		Memcpy, Strcpy, Strncpy, Sprintf, Snprintf,
		Strcat, Strncat, Sscanf, Fscanf, HomebrewLoop,
	}
}

// Pair is a feasible (location, target) combination: the target must live
// where an overflow starting in that location can reach it directly (for
// indirect attacks the intermediate pointer lives in the buffer's
// segment).
type Pair struct {
	Loc Location
	Tgt Target
}

// allPairs returns RIPE's fifteen feasible location/target pairs: six on
// the stack (including the return address and old base pointer, which only
// exist there) and three in each of heap, BSS, and data.
func allPairs() []Pair {
	return []Pair{
		{Stack, RetAddr}, {Stack, BasePointer}, {Stack, FuncPtr},
		{Stack, FuncPtrParam}, {Stack, LongjmpBuf}, {Stack, StructFuncPtr},
		{Heap, FuncPtr}, {Heap, LongjmpBuf}, {Heap, StructFuncPtr},
		{BSS, FuncPtr}, {BSS, LongjmpBuf}, {BSS, StructFuncPtr},
		{Data, FuncPtr}, {Data, LongjmpBuf}, {Data, StructFuncPtr},
	}
}

// retlibcPairs are the pairs whose target is promptly used as a call/jump
// destination, which return-into-libc needs.
func retlibcPairs() []Pair {
	return []Pair{
		{Stack, RetAddr}, {Stack, FuncPtr}, {Stack, FuncPtrParam},
		{Heap, FuncPtr}, {BSS, FuncPtr}, {Data, FuncPtr},
		{Stack, LongjmpBuf}, {Heap, LongjmpBuf}, {BSS, LongjmpBuf}, {Data, LongjmpBuf},
	}
}

// ropPairs are the return-path targets a ROP chain can pivot through.
func ropPairs() []Pair {
	return []Pair{
		{Stack, RetAddr},
		{Stack, LongjmpBuf}, {Heap, LongjmpBuf}, {BSS, LongjmpBuf}, {Data, LongjmpBuf},
	}
}

// Attack is one attack form of the matrix.
type Attack struct {
	Technique Technique
	Code      AttackCode
	Loc       Location
	Tgt       Target
	Func      Function
}

// ID renders a stable attack identifier.
func (a Attack) ID() string {
	return fmt.Sprintf("%s/%s/%s/%s/%s", a.Technique, a.Code, a.Loc, a.Tgt, a.Func)
}

// Matrix enumerates all 850 attack forms in deterministic order.
func Matrix() []Attack {
	var out []Attack
	for _, code := range []AttackCode{ShellcodeFile, ShellcodeShell} {
		for _, tech := range []Technique{Direct, Indirect} {
			for _, p := range allPairs() {
				for _, fn := range allFunctions() {
					out = append(out, Attack{tech, code, p.Loc, p.Tgt, fn})
				}
			}
		}
	}
	for _, tech := range []Technique{Direct, Indirect} {
		for _, p := range retlibcPairs() {
			for _, fn := range allFunctions() {
				out = append(out, Attack{tech, ReturnIntoLibc, p.Loc, p.Tgt, fn})
			}
		}
	}
	for _, p := range ropPairs() {
		for _, fn := range allFunctions() {
			out = append(out, Attack{Direct, ROP, p.Loc, p.Tgt, fn})
		}
	}
	return out
}

// Outcome of one attack attempt.
type Outcome int

// Attack outcomes.
const (
	Success Outcome = iota + 1
	Failure
)

// String returns the outcome name.
func (o Outcome) String() string {
	if o == Success {
		return "SUCCESS"
	}
	return "FAILURE"
}

// Evaluate decides whether one attack succeeds against a binary with the
// given security profile under the paper's measured runtime configuration
// (ASLR off, stack canaries off, executable stack on — note that the
// executable-stack flag flips READ_IMPLIES_EXEC, making BSS/Data pages
// executable too).
func Evaluate(a Attack, prof toolchain.SecurityProfile) Outcome {
	// Bounded functions cannot overflow at all.
	if boundedFunctions[a.Func] {
		return Failure
	}
	// ASan redzones poison the bytes adjacent to every object; both the
	// direct overflow and the indirect first-stage pointer corruption are
	// contiguous writes, so instrumented builds stop essentially all forms.
	if prof.Redzones {
		return Failure
	}
	// Stack canaries stop direct attacks that traverse the frame.
	if prof.StackCanary && a.Technique == Direct && a.Loc == Stack &&
		(a.Tgt == RetAddr || a.Tgt == BasePointer) {
		return Failure
	}
	// Clang's hardened BSS/Data object layout separates buffers from
	// pointers in those segments, defeating the indirect first stage.
	if prof.HardenedSegmentLayout && a.Technique == Indirect &&
		(a.Loc == BSS || a.Loc == Data) {
		return Failure
	}

	switch a.Code {
	case ShellcodeShell:
		// The shell-spawner payload needs an interactive tty; inside the
		// experiment container it always dies. This matches the paper:
		// only the file-dropper shellcode was observed succeeding.
		return Failure
	case ROP:
		// Gadget offsets are compiled against a different libc build than
		// the pinned container one; the chains crash.
		return Failure
	case ShellcodeFile:
		if prof.NonExecStack {
			// With a non-executable stack (and no READ_IMPLIES_EXEC), no
			// segment is executable.
			return Failure
		}
		switch a.Loc {
		case Heap:
			// Allocator metadata integrity checks abort the process before
			// the corrupted pointer is used.
			return Failure
		case BSS, Data:
			// Executable through READ_IMPLIES_EXEC; the four unbounded
			// copy primitives deliver the payload intact.
			if a.Func == Memcpy || a.Func == Strcpy || a.Func == Sprintf || a.Func == Strcat {
				return Success
			}
			// sscanf/homebrew mangle the NUL-bearing payload.
			return Failure
		case Stack:
			// Frame reuse clobbers deeper stack targets before dispatch;
			// only the immediate ones survive, and only via the two exact
			// copy primitives.
			immediate := a.Tgt == RetAddr || a.Tgt == FuncPtr || a.Tgt == LongjmpBuf
			if immediate && (a.Func == Memcpy || a.Func == Strcpy) {
				return Success
			}
			return Failure
		}
	case ReturnIntoLibc:
		// libc entry points contain NUL bytes on this platform, so only
		// the length-based primitive writes them; return-address chains
		// additionally fault on 16-byte stack alignment (movaps), leaving
		// the promptly-called function pointers in BSS/Data.
		if a.Func == Memcpy && a.Tgt == FuncPtr && (a.Loc == BSS || a.Loc == Data) {
			return Success
		}
		return Failure
	}
	return Failure
}

// Result aggregates a full testbed run for one build type.
type Result struct {
	BuildType  string
	Successful int
	Failed     int
	// ByCode counts successes per attack payload.
	ByCode map[string]int
	// SuccessIDs lists successful attack identifiers (sorted).
	SuccessIDs []string
}

// Total returns the number of attack forms evaluated.
func (r Result) Total() int { return r.Successful + r.Failed }

// RunTestbed evaluates the complete matrix against one security profile.
func RunTestbed(buildType string, prof toolchain.SecurityProfile) Result {
	res := Result{BuildType: buildType, ByCode: make(map[string]int)}
	for _, a := range Matrix() {
		if Evaluate(a, prof) == Success {
			res.Successful++
			res.ByCode[a.Code.String()]++
			res.SuccessIDs = append(res.SuccessIDs, a.ID())
		} else {
			res.Failed++
		}
	}
	sort.Strings(res.SuccessIDs)
	return res
}
