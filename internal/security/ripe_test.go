package security

import (
	"strings"
	"testing"

	"fex/internal/toolchain"
)

func gccProfile() toolchain.SecurityProfile {
	return toolchain.SecurityProfile{} // paper config: everything off
}

func clangProfile() toolchain.SecurityProfile {
	return toolchain.SecurityProfile{HardenedSegmentLayout: true}
}

func TestMatrixHas850Attacks(t *testing.T) {
	m := Matrix()
	if len(m) != 850 {
		t.Fatalf("matrix has %d attack forms, want 850", len(m))
	}
}

func TestMatrixComposition(t *testing.T) {
	counts := map[AttackCode]int{}
	for _, a := range Matrix() {
		counts[a.Code]++
	}
	want := map[AttackCode]int{
		ShellcodeFile:  300,
		ShellcodeShell: 300,
		ReturnIntoLibc: 200,
		ROP:            50,
	}
	for code, n := range want {
		if counts[code] != n {
			t.Errorf("%s: %d forms, want %d", code, counts[code], n)
		}
	}
}

func TestMatrixDeterministicAndUnique(t *testing.T) {
	a := Matrix()
	b := Matrix()
	seen := make(map[string]bool, len(a))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("matrix enumeration is not deterministic")
		}
		id := a[i].ID()
		if seen[id] {
			t.Errorf("duplicate attack form %s", id)
		}
		seen[id] = true
	}
}

func TestTable2GCC(t *testing.T) {
	res := RunTestbed("gcc_native", gccProfile())
	// Table II: Native (GCC) — 64 successful, 786 failed.
	if res.Successful != 64 || res.Failed != 786 {
		t.Errorf("GCC: %d/%d, want 64/786", res.Successful, res.Failed)
	}
}

func TestTable2Clang(t *testing.T) {
	res := RunTestbed("clang_native", clangProfile())
	// Table II: Native (Clang) — 38 successful, 812 failed.
	if res.Successful != 38 || res.Failed != 812 {
		t.Errorf("Clang: %d/%d, want 38/812", res.Successful, res.Failed)
	}
}

func TestClangAdvantageIsIndirectBSSData(t *testing.T) {
	gcc := RunTestbed("gcc", gccProfile())
	clang := RunTestbed("clang", clangProfile())
	// Every attack Clang blocks relative to GCC must be an indirect
	// attack through a BSS or Data buffer (the Table II analysis).
	clangSet := make(map[string]bool, len(clang.SuccessIDs))
	for _, id := range clang.SuccessIDs {
		clangSet[id] = true
	}
	for _, id := range gcc.SuccessIDs {
		if clangSet[id] {
			continue
		}
		if !strings.Contains(id, "indirect/") {
			t.Errorf("blocked attack %s is not indirect", id)
		}
		if !strings.Contains(id, "/bss/") && !strings.Contains(id, "/data/") {
			t.Errorf("blocked attack %s is not in bss/data", id)
		}
	}
}

func TestSuccessfulFamiliesMatchPaper(t *testing.T) {
	// "only a handful of attacks were successful: through the shellcode
	// that creates a dummy file and through return-into-libc".
	res := RunTestbed("gcc", gccProfile())
	for code := range res.ByCode {
		if code != ShellcodeFile.String() && code != ReturnIntoLibc.String() {
			t.Errorf("unexpected successful family %q", code)
		}
	}
	if res.ByCode[ShellcodeFile.String()] == 0 || res.ByCode[ReturnIntoLibc.String()] == 0 {
		t.Errorf("expected both families present: %v", res.ByCode)
	}
}

func TestASanBlocksEverything(t *testing.T) {
	res := RunTestbed("gcc_asan", toolchain.SecurityProfile{Redzones: true})
	if res.Successful != 0 {
		t.Errorf("ASan: %d successes, want 0", res.Successful)
	}
}

func TestNonExecStackBlocksShellcode(t *testing.T) {
	res := RunTestbed("nx", toolchain.SecurityProfile{NonExecStack: true})
	for _, id := range res.SuccessIDs {
		if strings.Contains(id, "shellcode") {
			t.Errorf("shellcode succeeded with NX: %s", id)
		}
	}
}

func TestStackCanaryBlocksDirectStackControlAttacks(t *testing.T) {
	base := RunTestbed("plain", gccProfile())
	canary := RunTestbed("canary", toolchain.SecurityProfile{StackCanary: true})
	if canary.Successful >= base.Successful {
		t.Errorf("canary did not reduce successes: %d vs %d", canary.Successful, base.Successful)
	}
	for _, id := range canary.SuccessIDs {
		if strings.HasPrefix(id, "direct/") && strings.Contains(id, "/stack/ret/") {
			t.Errorf("direct ret-overwrite survived canary: %s", id)
		}
	}
}

func TestBoundedFunctionsNeverSucceed(t *testing.T) {
	res := RunTestbed("gcc", gccProfile())
	for _, id := range res.SuccessIDs {
		for fn := range boundedFunctions {
			if strings.HasSuffix(id, "/"+fn.String()) {
				t.Errorf("bounded function attack succeeded: %s", id)
			}
		}
	}
}

func TestROPAndShellSpawnerAlwaysFail(t *testing.T) {
	res := RunTestbed("gcc", gccProfile())
	for _, id := range res.SuccessIDs {
		if strings.Contains(id, "/rop/") || strings.Contains(id, "shellcode-shell") {
			t.Errorf("unexpected success: %s", id)
		}
	}
}

func TestResultTotalsConsistent(t *testing.T) {
	for _, prof := range []toolchain.SecurityProfile{gccProfile(), clangProfile(), {Redzones: true}} {
		res := RunTestbed("x", prof)
		if res.Total() != 850 {
			t.Errorf("total %d, want 850", res.Total())
		}
		if len(res.SuccessIDs) != res.Successful {
			t.Errorf("id list %d vs count %d", len(res.SuccessIDs), res.Successful)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	prof := gccProfile()
	for _, a := range Matrix()[:50] {
		first := Evaluate(a, prof)
		for i := 0; i < 5; i++ {
			if Evaluate(a, prof) != first {
				t.Fatalf("non-deterministic outcome for %s", a.ID())
			}
		}
	}
}

func TestStringMethods(t *testing.T) {
	a := Attack{Direct, ShellcodeFile, Stack, RetAddr, Memcpy}
	if a.ID() != "direct/shellcode-file/stack/ret/memcpy" {
		t.Errorf("ID = %q", a.ID())
	}
	if Success.String() != "SUCCESS" || Failure.String() != "FAILURE" {
		t.Error("outcome strings")
	}
}
