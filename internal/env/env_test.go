package env

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultOnly(t *testing.T) {
	e := New()
	if err := e.Set(Default, "CC", "gcc"); err != nil {
		t.Fatal(err)
	}
	got := e.Resolve(false)
	if got["CC"] != "gcc" {
		t.Errorf("CC = %q", got["CC"])
	}
}

func TestUpdatedAppendsToDefault(t *testing.T) {
	e := New()
	_ = e.Set(Default, "CFLAGS", "-O2")
	_ = e.Set(Updated, "CFLAGS", "-g")
	got := e.Resolve(false)
	if got["CFLAGS"] != "-O2 -g" {
		t.Errorf("CFLAGS = %q, want \"-O2 -g\"", got["CFLAGS"])
	}
}

func TestUpdatedAssignsWhenAbsent(t *testing.T) {
	e := New()
	_ = e.Set(Updated, "NEW", "value")
	got := e.Resolve(false)
	if got["NEW"] != "value" {
		t.Errorf("NEW = %q", got["NEW"])
	}
}

func TestForcedOverwrites(t *testing.T) {
	// The paper's example: BIN_PATH defaults to /usr/bin/ but a forced
	// value of /home/usr/bin/ wins.
	e := New()
	_ = e.Set(Default, "BIN_PATH", "/usr/bin/")
	_ = e.Set(Forced, "BIN_PATH", "/home/usr/bin/")
	got := e.Resolve(false)
	if got["BIN_PATH"] != "/home/usr/bin/" {
		t.Errorf("BIN_PATH = %q", got["BIN_PATH"])
	}
}

func TestForcedBeatsUpdated(t *testing.T) {
	e := New()
	_ = e.Set(Default, "V", "a")
	_ = e.Set(Updated, "V", "b")
	_ = e.Set(Forced, "V", "c")
	if got := e.Resolve(false)["V"]; got != "c" {
		t.Errorf("V = %q, want c", got)
	}
}

func TestDebugOnlyInDebugMode(t *testing.T) {
	e := New()
	_ = e.Set(Forced, "V", "release")
	_ = e.Set(Debug, "V", "debug")
	if got := e.Resolve(false)["V"]; got != "release" {
		t.Errorf("release mode V = %q", got)
	}
	if got := e.Resolve(true)["V"]; got != "debug" {
		t.Errorf("debug mode V = %q", got)
	}
}

func TestSetEmptyKeyFails(t *testing.T) {
	e := New()
	if err := e.Set(Default, "", "x"); err == nil {
		t.Error("expected error for empty key")
	}
}

func TestSetInvalidClassFails(t *testing.T) {
	e := New()
	if err := e.Set(Class(99), "K", "v"); err == nil {
		t.Error("expected error for invalid class")
	}
}

func TestGet(t *testing.T) {
	e := New()
	_ = e.Set(Updated, "K", "v")
	if v, ok := e.Get(Updated, "K"); !ok || v != "v" {
		t.Errorf("Get = %q, %t", v, ok)
	}
	if _, ok := e.Get(Default, "K"); ok {
		t.Error("key leaked across classes")
	}
}

func TestSetAll(t *testing.T) {
	e := New()
	if err := e.SetAll(Default, map[string]string{"A": "1", "B": "2"}); err != nil {
		t.Fatal(err)
	}
	got := e.Resolve(false)
	if got["A"] != "1" || got["B"] != "2" {
		t.Errorf("got %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	e := New()
	_ = e.Set(Default, "K", "orig")
	c := e.Clone()
	_ = c.Set(Default, "K", "changed")
	if got := e.Resolve(false)["K"]; got != "orig" {
		t.Error("clone mutation affected original")
	}
}

func TestMergeOverlays(t *testing.T) {
	base := New()
	_ = base.Set(Default, "A", "base")
	_ = base.Set(Forced, "B", "base")
	other := New()
	_ = other.Set(Default, "A", "other")
	_ = other.Set(Debug, "C", "other")
	base.Merge(other)
	got := base.Resolve(true)
	if got["A"] != "other" {
		t.Errorf("A = %q", got["A"])
	}
	if got["B"] != "base" {
		t.Errorf("B = %q", got["B"])
	}
	if got["C"] != "other" {
		t.Errorf("C = %q", got["C"])
	}
}

func TestMergeNil(t *testing.T) {
	e := New()
	_ = e.Set(Default, "K", "v")
	e.Merge(nil) // must not panic
	if got := e.Resolve(false)["K"]; got != "v" {
		t.Error("merge nil changed state")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var e Environment
	if err := e.Set(Default, "K", "v"); err != nil {
		t.Fatal(err)
	}
	if got := e.Resolve(false)["K"]; got != "v" {
		t.Errorf("K = %q", got)
	}
}

func TestResolveSortedOrder(t *testing.T) {
	e := New()
	_ = e.Set(Default, "Z", "1")
	_ = e.Set(Default, "A", "2")
	_ = e.Set(Default, "M", "3")
	got := e.ResolveSorted(false)
	want := []string{"A=2", "M=3", "Z=1"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Default: "default", Updated: "updated", Forced: "forced", Debug: "debug",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestNativeProvider(t *testing.T) {
	p := NativeProvider{}
	if p.Name() != "native" {
		t.Errorf("name = %q", p.Name())
	}
	if got := p.Variables().Resolve(false); len(got) != 0 {
		t.Errorf("native provider sets variables: %v", got)
	}
}

func TestASanProvider(t *testing.T) {
	p := ASanProvider{}
	vars := p.Variables().Resolve(false)
	if !strings.Contains(vars["ASAN_OPTIONS"], "detect_leaks=0") {
		t.Errorf("ASAN_OPTIONS = %q", vars["ASAN_OPTIONS"])
	}
	debugVars := p.Variables().Resolve(true)
	if !strings.Contains(debugVars["ASAN_OPTIONS"], "verbosity=1") {
		t.Errorf("debug ASAN_OPTIONS = %q", debugVars["ASAN_OPTIONS"])
	}
}

func TestASanProviderCustomOptions(t *testing.T) {
	p := ASanProvider{Options: []string{"quarantine_size_mb=1"}}
	vars := p.Variables().Resolve(false)
	if vars["ASAN_OPTIONS"] != "quarantine_size_mb=1" {
		t.Errorf("ASAN_OPTIONS = %q", vars["ASAN_OPTIONS"])
	}
}

func TestQuickResolveDeterministic(t *testing.T) {
	prop := func(k1, v1, v2 string) bool {
		if k1 == "" {
			return true
		}
		e := New()
		_ = e.Set(Default, k1, v1)
		_ = e.Set(Updated, k1, v2)
		a := e.Resolve(false)[k1]
		b := e.Resolve(false)[k1]
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
