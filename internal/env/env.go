// Package env implements FEX's four-level environment-variable model (§II-B
// of the paper).
//
// Building and running benchmarks is sensitive to environment variables, so
// FEX defines four variable classes with strictly increasing priority:
//
//  1. Default — base values.
//  2. Updated — appended to an existing value, assigned otherwise.
//  3. Forced  — overwrite regardless of any previous value.
//  4. Debug   — applied only in debug mode, with the highest priority.
//
// An Environment resolves these classes into a flat map. Experiment types
// (native, asan, …) provide their own Environment via a Provider, mirroring
// the paper's Environment subclasses (NativeEnvironment, ASanEnvironment).
package env

import (
	"fmt"
	"sort"
	"strings"
)

// Class identifies one of the four variable classes.
type Class int

// Variable classes in increasing priority order.
const (
	Default Class = iota + 1
	Updated
	Forced
	Debug
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Default:
		return "default"
	case Updated:
		return "updated"
	case Forced:
		return "forced"
	case Debug:
		return "debug"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Separator joins updated values onto existing ones. FEX uses
// space-separation for flag-style variables (CFLAGS etc.).
const Separator = " "

// Environment holds the four classes of variables. The zero value is ready
// to use.
type Environment struct {
	defaults map[string]string
	updated  map[string]string
	forced   map[string]string
	debug    map[string]string
}

// New returns an empty Environment.
func New() *Environment {
	return &Environment{
		defaults: make(map[string]string),
		updated:  make(map[string]string),
		forced:   make(map[string]string),
		debug:    make(map[string]string),
	}
}

func (e *Environment) class(c Class) (map[string]string, error) {
	if e.defaults == nil {
		e.defaults = make(map[string]string)
		e.updated = make(map[string]string)
		e.forced = make(map[string]string)
		e.debug = make(map[string]string)
	}
	switch c {
	case Default:
		return e.defaults, nil
	case Updated:
		return e.updated, nil
	case Forced:
		return e.forced, nil
	case Debug:
		return e.debug, nil
	default:
		return nil, fmt.Errorf("unknown environment class %d", int(c))
	}
}

// Set records a variable in the given class, replacing any previous value in
// that class.
func (e *Environment) Set(c Class, key, value string) error {
	m, err := e.class(c)
	if err != nil {
		return err
	}
	if key == "" {
		return fmt.Errorf("empty environment variable name")
	}
	m[key] = value
	return nil
}

// SetAll records every entry of vars in the given class.
func (e *Environment) SetAll(c Class, vars map[string]string) error {
	for k, v := range vars {
		if err := e.Set(c, k, v); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the value recorded for key in the given class.
func (e *Environment) Get(c Class, key string) (string, bool) {
	m, err := e.class(c)
	if err != nil {
		return "", false
	}
	v, ok := m[key]
	return v, ok
}

// Clone returns a deep copy of the environment.
func (e *Environment) Clone() *Environment {
	out := New()
	for k, v := range e.defaults {
		out.defaults[k] = v
	}
	for k, v := range e.updated {
		out.updated[k] = v
	}
	for k, v := range e.forced {
		out.forced[k] = v
	}
	for k, v := range e.debug {
		out.debug[k] = v
	}
	return out
}

// Merge overlays other onto e class-by-class: for each class, other's
// entries replace e's entries with the same key. Merge lets an experiment
// type refine the framework-wide environment.
func (e *Environment) Merge(other *Environment) {
	if other == nil {
		return
	}
	if e.defaults == nil {
		_, _ = e.class(Default) // initialize maps
	}
	for k, v := range other.defaults {
		e.defaults[k] = v
	}
	for k, v := range other.updated {
		e.updated[k] = v
	}
	for k, v := range other.forced {
		e.forced[k] = v
	}
	for k, v := range other.debug {
		e.debug[k] = v
	}
}

// Resolve flattens the four classes into a single map following the paper's
// priority order: defaults first, then updated values appended (or assigned
// if absent), then forced overwrites, then — only when debugMode is set —
// debug overwrites.
func (e *Environment) Resolve(debugMode bool) map[string]string {
	out := make(map[string]string, len(e.defaults)+len(e.updated)+len(e.forced)+len(e.debug))
	for k, v := range e.defaults {
		out[k] = v
	}
	for k, v := range e.updated {
		if prev, ok := out[k]; ok && prev != "" {
			out[k] = prev + Separator + v
		} else {
			out[k] = v
		}
	}
	for k, v := range e.forced {
		out[k] = v
	}
	if debugMode {
		for k, v := range e.debug {
			out[k] = v
		}
	}
	return out
}

// ResolveSorted returns the resolved environment as "KEY=value" strings in
// sorted order, convenient for logging the complete experimental setup (the
// paper stores environment details in the log file for reproducibility).
func (e *Environment) ResolveSorted(debugMode bool) []string {
	m := e.Resolve(debugMode)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"="+m[k])
	}
	return out
}

// Provider supplies the environment for a named experiment type. It mirrors
// the paper's Environment class hierarchy: the framework instantiates the
// provider matching the current experiment and merges its variables on top
// of the base environment.
type Provider interface {
	// Name identifies the provider (e.g. "native", "asan").
	Name() string
	// Variables returns this provider's environment contribution.
	Variables() *Environment
}

// NativeProvider is the baseline provider: no extra variables.
type NativeProvider struct{}

var _ Provider = NativeProvider{}

// Name implements Provider.
func (NativeProvider) Name() string { return "native" }

// Variables implements Provider.
func (NativeProvider) Variables() *Environment { return New() }

// ASanProvider configures AddressSanitizer runtime options, mirroring the
// paper's ASanEnvironment example (ASAN_OPTIONS runtime flags).
type ASanProvider struct {
	// Options are ASAN_OPTIONS entries such as "detect_leaks=0".
	Options []string
}

var _ Provider = ASanProvider{}

// Name implements Provider.
func (p ASanProvider) Name() string { return "asan" }

// Variables implements Provider.
func (p ASanProvider) Variables() *Environment {
	e := New()
	opts := p.Options
	if len(opts) == 0 {
		opts = []string{"detect_leaks=0", "halt_on_error=1"}
	}
	_ = e.Set(Forced, "ASAN_OPTIONS", strings.Join(opts, ":"))
	_ = e.Set(Debug, "ASAN_OPTIONS", strings.Join(append(append([]string{}, opts...), "verbosity=1"), ":"))
	return e
}
