package clock

import (
	"testing"
	"time"
)

func TestRealClockAfterFires(t *testing.T) {
	c := Real()
	start := c.Now()
	tm := c.After(time.Millisecond)
	fired := <-tm.C
	if fired.Before(start) {
		t.Fatalf("real timer fired at %v, before start %v", fired, start)
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported the timer as still pending")
	}
}

func TestVirtualAdvanceFiresInDeadlineOrder(t *testing.T) {
	base := time.Unix(1000, 0)
	v := NewVirtual(base)
	t3 := v.After(30 * time.Millisecond)
	t1 := v.After(10 * time.Millisecond)
	t2 := v.After(20 * time.Millisecond)
	if got := v.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}

	v.Advance(25 * time.Millisecond)
	if got := <-t1.C; !got.Equal(base.Add(10 * time.Millisecond)) {
		t.Fatalf("t1 fired at %v", got)
	}
	if got := <-t2.C; !got.Equal(base.Add(20 * time.Millisecond)) {
		t.Fatalf("t2 fired at %v", got)
	}
	select {
	case <-t3.C:
		t.Fatal("t3 fired before its deadline")
	default:
	}
	if got := v.Now(); !got.Equal(base.Add(25 * time.Millisecond)) {
		t.Fatalf("Now = %v after Advance", got)
	}

	v.Advance(5 * time.Millisecond)
	if got := <-t3.C; !got.Equal(base.Add(30 * time.Millisecond)) {
		t.Fatalf("t3 fired at %v", got)
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending = %d after all fired", v.Pending())
	}
}

func TestVirtualImmediateFire(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	tm := v.After(0)
	select {
	case <-tm.C:
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	if tm.Stop() {
		t.Fatal("Stop on an already-fired immediate timer returned true")
	}
	if v.Pending() != 0 {
		t.Fatalf("immediate timer left %d pending", v.Pending())
	}
}

func TestVirtualStopPreventsFire(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	tm := v.After(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	v.Advance(time.Hour)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestVirtualAdvanceToNext(t *testing.T) {
	base := time.Unix(0, 0)
	v := NewVirtual(base)
	if v.AdvanceToNext() {
		t.Fatal("AdvanceToNext with no timers returned true")
	}
	tm := v.After(42 * time.Millisecond)
	later := v.After(time.Second)
	if !v.AdvanceToNext() {
		t.Fatal("AdvanceToNext with pending timers returned false")
	}
	if got := v.Now(); !got.Equal(base.Add(42 * time.Millisecond)) {
		t.Fatalf("Now = %v, want earliest deadline", got)
	}
	select {
	case <-tm.C:
	default:
		t.Fatal("earliest timer did not fire")
	}
	select {
	case <-later.C:
		t.Fatal("later timer fired early")
	default:
	}
}

// TestTickerOnVirtualClock drives a Ticker deterministically: each
// interval advance delivers exactly one tick, ticks a slow receiver
// missed coalesce instead of queueing, and Stop releases the chained
// timer.
func TestTickerOnVirtualClock(t *testing.T) {
	base := time.Unix(2000, 0)
	v := NewVirtual(base)
	const d = 2 * time.Second
	tk := NewTicker(v, d)
	defer tk.Stop()

	recv := func() time.Time {
		select {
		case got := <-tk.C:
			return got
		case <-time.After(5 * time.Second):
			t.Fatal("tick not delivered")
			return time.Time{}
		}
	}

	for i := 1; i <= 3; i++ {
		v.BlockUntil(1) // wait for the ticker's next chained After
		v.Advance(d)
		if got := recv(); !got.Equal(base.Add(time.Duration(i) * d)) {
			t.Fatalf("tick %d at %v, want %v", i, got, base.Add(time.Duration(i)*d))
		}
	}

	// A receiver that misses intervals gets the coalesced latest tick,
	// not a backlog: advance twice without reading.
	v.BlockUntil(1)
	v.Advance(d)
	// Wait until the ticker consumed the fire and re-armed before
	// advancing again, so both advances are distinct intervals.
	v.BlockUntil(1)
	v.Advance(d)
	first := recv()
	if !first.Equal(base.Add(4 * d)) {
		t.Fatalf("coalesced tick at %v, want the 4th interval %v", first, base.Add(4*d))
	}
	select {
	case extra := <-tk.C:
		// The 5th interval's tick may legitimately arrive (it fired
		// after the read above); anything older means a backlog queued.
		if !extra.Equal(base.Add(5 * d)) {
			t.Fatalf("backlogged tick at %v", extra)
		}
	default:
	}

	tk.Stop()
	tk.Stop() // idempotent
}

func TestTickerRejectsNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	NewTicker(NewVirtual(time.Unix(0, 0)), 0)
}

func TestVirtualBlockUntil(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	released := make(chan struct{})
	go func() {
		v.BlockUntil(2)
		close(released)
	}()
	v.After(time.Second)
	select {
	case <-released:
		t.Fatal("BlockUntil(2) released with one timer")
	case <-time.After(10 * time.Millisecond):
	}
	v.After(time.Second)
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("BlockUntil(2) did not release with two timers")
	}
}
