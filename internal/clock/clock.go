// Package clock abstracts time for the scheduler's fault-tolerance
// machinery. Probation backoff, per-cell deadlines, and speculation
// thresholds all wait on timers; production uses the real clock, while
// tests inject a Virtual clock and advance it explicitly, so timing
// behaviour (a probe fires, a deadline expires) is proven
// deterministically without sleeping real time.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Timer is a stoppable one-shot timer. C fires at most once.
type Timer struct {
	// C delivers the fire time.
	C <-chan time.Time

	stop func() bool
}

// Stop cancels the timer. It reports whether the call prevented the
// timer from firing. Safe to call multiple times.
func (t *Timer) Stop() bool { return t.stop() }

// Clock is the scheduler's time source.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a Timer that fires once d has elapsed on this clock.
	// A non-positive d fires immediately.
	After(d time.Duration) *Timer
}

// realClock delegates to the runtime clock.
type realClock struct{}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time { return time.Now() }

func (realClock) After(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

// Ticker delivers repeated ticks every d on a Clock, built by chaining
// After timers so a Virtual clock drives it deterministically (the
// hosts-file poller runs on it, making mid-run joins testable without
// sleeping). Like time.Ticker, a slow receiver coalesces ticks rather
// than queueing them. Stop releases the ticker's goroutine; it does not
// close C.
type Ticker struct {
	// C delivers the tick times.
	C <-chan time.Time

	stop chan struct{}
	once sync.Once
}

// NewTicker returns a Ticker firing every d on c. d must be positive.
func NewTicker(c Clock, d time.Duration) *Ticker {
	if d <= 0 {
		panic("clock: NewTicker interval must be positive")
	}
	ch := make(chan time.Time, 1)
	tk := &Ticker{C: ch, stop: make(chan struct{})}
	go func() {
		for {
			t := c.After(d)
			select {
			case v := <-t.C:
				select {
				case ch <- v:
				default: // receiver is behind; coalesce this tick
				}
			case <-tk.stop:
				t.Stop()
				return
			}
		}
	}()
	return tk
}

// Stop terminates the ticker. Safe to call multiple times.
func (t *Ticker) Stop() { t.once.Do(func() { close(t.stop) }) }

// vtimer is one pending virtual timer.
type vtimer struct {
	deadline time.Time
	seq      int // registration order breaks deadline ties deterministically
	ch       chan time.Time
}

// Virtual is a manually-advanced clock. Time moves only through Advance
// and AdvanceToNext; timers registered via After fire during those calls,
// in (deadline, registration) order. BlockUntil lets a test wait for the
// code under test to have registered its timers before advancing — the
// standard pump loop is:
//
//	go func() {
//	        for {
//	                vc.BlockUntil(1)
//	                vc.AdvanceToNext()
//	        }
//	}()
type Virtual struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	seq     int
	pending []*vtimer
}

// NewVirtual returns a virtual clock reading start.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{now: start}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// Now returns the virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After registers a timer firing once d has elapsed on the virtual
// clock. A non-positive d fires immediately without registering.
func (v *Virtual) After(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	if d <= 0 {
		ch <- v.now
		return &Timer{C: ch, stop: func() bool { return false }}
	}
	t := &vtimer{deadline: v.now.Add(d), seq: v.seq, ch: ch}
	v.seq++
	v.pending = append(v.pending, t)
	v.cond.Broadcast()
	return &Timer{C: ch, stop: func() bool { return v.remove(t) }}
}

// remove unregisters a pending timer, reporting whether it was still
// pending (i.e. the Stop prevented a fire).
func (v *Virtual) remove(t *vtimer) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, p := range v.pending {
		if p == t {
			v.pending = append(v.pending[:i], v.pending[i+1:]...)
			return true
		}
	}
	return false
}

// Advance moves the clock forward by d, firing every timer whose
// deadline is reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.advanceTo(v.now.Add(d))
}

// AdvanceToNext jumps the clock to the earliest pending deadline and
// fires the timers due there. It reports whether any timer was pending.
func (v *Virtual) AdvanceToNext() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.pending) == 0 {
		return false
	}
	next := v.pending[0].deadline
	for _, t := range v.pending[1:] {
		if t.deadline.Before(next) {
			next = t.deadline
		}
	}
	v.advanceTo(next)
	return true
}

// advanceTo fires all timers due at or before target and sets now.
// Called with mu held.
func (v *Virtual) advanceTo(target time.Time) {
	if target.Before(v.now) {
		target = v.now
	}
	var due []*vtimer
	rest := v.pending[:0]
	for _, t := range v.pending {
		if !t.deadline.After(target) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	v.pending = rest
	sort.Slice(due, func(i, j int) bool {
		if !due[i].deadline.Equal(due[j].deadline) {
			return due[i].deadline.Before(due[j].deadline)
		}
		return due[i].seq < due[j].seq
	})
	for _, t := range due {
		t.ch <- t.deadline
	}
	v.now = target
}

// BlockUntil waits until at least n timers are pending.
func (v *Virtual) BlockUntil(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.pending) < n {
		v.cond.Wait()
	}
}

// Pending returns the number of registered, unfired timers.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.pending)
}
