// Package golden is the shared end-to-end test harness of the examples:
// a golden-file runner that executes an example in a scratch directory and
// compares every artifact it writes — run logs, collected CSVs, rendered
// SVGs — byte for byte against files committed under the example's
// testdata/golden directory. Regenerate the goldens with
//
//	go test ./examples/... -run Golden -update
//
// after an intentional output change; any unintentional drift in the
// experiment pipeline then fails the example suites with a byte-level
// diff. Examples run in deterministic mode (fixed clock, modeled time) so
// the goldens are machine-independent; the one genuinely nondeterministic
// example (nginx: a live load-generation sweep) normalizes its volatile
// fields through a Scrub hook before comparing.
package golden

import (
	"bytes"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// update rewrites golden files instead of comparing against them.
var update = flag.Bool("update", false, "rewrite the examples' golden files instead of comparing")

// Golden configures one golden run.
type Options struct {
	// Scrub normalizes one produced artifact before comparison (and
	// before -update writes it): it receives the file's slash-separated
	// path relative to the scratch directory and its bytes, and returns
	// the normalized bytes — or nil to exclude the file from the golden
	// set entirely. A nil Scrub compares every artifact byte for byte.
	Scrub func(name string, data []byte) []byte
}

// Run executes run inside a scratch directory and compares every
// file it leaves behind against the calling package's testdata/golden
// directory: the file sets must match exactly, and each file must match
// byte for byte (after Scrub, when set). With -update the golden
// directory is rewritten from this run instead.
func Run(t *testing.T, run func() error, g Options) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	goldenDir := filepath.Join(wd, "testdata", "golden")
	scratch := t.TempDir()
	if err := os.Chdir(scratch); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := run(); err != nil {
		t.Fatalf("example failed: %v", err)
	}

	produced, err := collectFiles(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if g.Scrub != nil {
		scrubbed := map[string][]byte{}
		for name, data := range produced {
			if out := g.Scrub(name, data); out != nil {
				scrubbed[name] = out
			}
		}
		produced = scrubbed
	}
	if len(produced) == 0 {
		t.Fatal("example produced no artifacts to golden-test")
	}

	if *update {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		for name, data := range produced {
			path := filepath.Join(goldenDir, filepath.FromSlash(name))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("updated %d golden files in %s", len(produced), goldenDir)
		return
	}

	golden, err := collectFiles(goldenDir)
	if err != nil {
		t.Fatalf("no golden files (regenerate with -update): %v", err)
	}
	for _, name := range sortedNames(golden) {
		got, ok := produced[name]
		if !ok {
			t.Errorf("missing artifact %s (golden exists; run with -update if intentional)", name)
			continue
		}
		if !bytes.Equal(got, golden[name]) {
			t.Errorf("artifact %s differs from golden:\n%s", name, diffSummary(golden[name], got))
		}
	}
	for _, name := range sortedNames(produced) {
		if _, ok := golden[name]; !ok {
			t.Errorf("unexpected artifact %s (no golden; run with -update if intentional)", name)
		}
	}
}

// collectFiles reads every regular file under dir, keyed by
// slash-separated relative path.
func collectFiles(dir string) (map[string][]byte, error) {
	out := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func sortedNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// diffSummary points at the first differing line of two byte streams
// without dumping megabytes of SVG into the test log.
func diffSummary(want, got []byte) string {
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %.200q\n  got:    %.200q", i+1, wantLines[i], gotLines[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d lines, got %d lines", len(wantLines), len(gotLines))
}
