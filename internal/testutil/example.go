// Package testutil holds deterministic-mode helpers the examples share: a
// fixed clock and host-side artifact export. It deliberately contains
// nothing that imports the testing package, so example binaries can link
// it without pulling test machinery; the golden-file harness lives in the
// testutil/golden subpackage, imported only by _test files.
package testutil

import (
	"fmt"
	"os"
	"time"

	"fex/internal/core"
)

// Clock returns a fixed clock for deterministic example runs: with it,
// the run-log header timestamp — the one live field of a modeled-time
// log — is constant, so the example's artifacts are byte-stable and can
// be committed as golden files.
func Clock() func() time.Time {
	instant := time.Date(2017, 6, 26, 12, 0, 0, 0, time.UTC) // DSN'17
	return func() time.Time { return instant }
}

// ExportReport copies a run's stored artifacts — the run log and the
// collected CSV — from the experiment container into the current
// directory as prefix.log and prefix.csv, the same shape as the CLI's
// "-o" export. Examples call it so their results are inspectable on the
// host and comparable by the golden harness.
func ExportReport(fx *core.Fex, report *core.RunReport, prefix string) error {
	for ext, path := range map[string]string{".log": report.LogPath, ".csv": report.CSVPath} {
		data, err := fx.ReadResult(path)
		if err != nil {
			return fmt.Errorf("export %s: %w", path, err)
		}
		if err := os.WriteFile(prefix+ext, data, 0o644); err != nil {
			return fmt.Errorf("export %s: %w", prefix+ext, err)
		}
	}
	return nil
}
