package main

import (
	"testing"

	"fex/internal/testutil/golden"
)

// TestExampleGolden executes the example end to end in deterministic mode
// (fixed clock, modeled time) inside a scratch directory and compares
// every artifact it writes — phoenix/micro_hardened logs and CSVs plus
// the rendered SVG — byte for byte against the committed golden files.
// Regenerate with -update after an intentional output change. Skipped
// under -short: it performs real installs, builds, and experiment runs.
func TestExampleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run skipped in -short mode")
	}
	golden.Run(t, func() error { return run(true) }, golden.Options{})
}
