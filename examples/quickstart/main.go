// Quickstart walks the paper's end-user workflow end to end (§III):
//
//  1. boot the framework (container + registries),
//  2. run the setup stage ("fex install -n gcc-6.1"),
//  3. run an experiment ("fex run -n phoenix -t gcc_native gcc_asan"),
//  4. inspect the collected CSV table,
//  5. render a plot,
//
// and then shows the extension workflow: registering a custom build type
// makefile and a custom experiment, exactly like adding gcc_asan.mk and an
// experiments/<name>/run.py in the paper.
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"fex/internal/buildsys"
	"fex/internal/core"
	"fex/internal/plot"
	"fex/internal/runlog"
	"fex/internal/table"
	"fex/internal/testutil"
	"fex/internal/workload"
)

func main() {
	if err := run(false); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// run executes the walkthrough. In deterministic mode — how the golden
// end-to-end test runs it — the clock is pinned and wall time is modeled,
// so every exported artifact is byte-stable.
func run(deterministic bool) error {
	opts := core.Options{Verbose: os.Stdout}
	if deterministic {
		opts.Verbose = io.Discard
		opts.Now = testutil.Clock()
	}
	fx, err := core.New(opts)
	if err != nil {
		return err
	}

	// --- setup stage -----------------------------------------------------
	// The image ships only sources; compilers are installed with pinned
	// versions, exactly like `fex.py install -n gcc-6.1`.
	fmt.Println("== setup stage")
	if _, err := fx.Install("gcc-6.1"); err != nil {
		return err
	}

	// --- run stage -------------------------------------------------------
	// fex run -n phoenix -t gcc_native gcc_asan -b histogram word_count -i test -r 2
	fmt.Println("== run stage")
	report, err := fx.Run(context.Background(), core.Config{
		Experiment: "phoenix",
		BuildTypes: []string{"gcc_native", "gcc_asan"},
		Benchmarks: []string{"histogram", "word_count"},
		Input:      workload.SizeTest,
		Reps:       2,
		ModelTime:  deterministic,
	})
	if err != nil {
		return err
	}
	fmt.Printf("collected %d measurements into %s\n\n", report.Measurements, report.CSVPath)
	fmt.Println(report.Table.String())
	if err := testutil.ExportReport(fx, report, "phoenix"); err != nil {
		return err
	}

	// --- plot stage ------------------------------------------------------
	svg, err := fx.Plot("phoenix", "perf")
	if err != nil {
		return err
	}
	if err := os.WriteFile("phoenix_perf.svg", []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote phoenix_perf.svg (ASan overhead, normalized to native GCC)")

	// ASCII rendition for terminals.
	cycles, err := report.Table.Floats("cycles")
	if err != nil {
		return err
	}
	benches, err := report.Table.Strings("bench")
	if err != nil {
		return err
	}
	types, err := report.Table.Strings("type")
	if err != nil {
		return err
	}
	labels := make([]string, len(benches))
	for i := range benches {
		labels[i] = benches[i] + " [" + types[i] + "]"
	}
	bp := plot.BarPlot{Categories: labels, Values: cycles, Opts: plot.Options{Title: "modeled cycles"}}
	ascii, err := bp.RenderASCII(78)
	if err != nil {
		return err
	}
	fmt.Println(ascii)

	// --- extension workflow ---------------------------------------------
	// A user adds a new type-specific makefile (like gcc_asan.mk in the
	// paper) and a new experiment reusing the generic runner and collect.
	fmt.Println("== extension workflow: custom build type + experiment")
	err = fx.BuildSystem().AddMakefileText("gcc_hardened.mk", buildsys.LayerExperiment, `
include gcc_native.mk
CFLAGS += -fstack-protector
CFLAGS += -D_FORTIFY_SOURCE=2
`)
	if err != nil {
		return err
	}
	err = fx.RegisterExperiment(&core.Experiment{
		Name:        "micro_hardened",
		Description: "microbenchmarks under a hardened build",
		Suite:       "micro",
		Kind:        core.KindPerformance,
		CSVKinds:    nil,
		NewRunner: func(fx *core.Fex) (core.Runner, error) {
			return &core.BenchRunner{Suite: "micro"}, nil
		},
		Collect: func(lg *runlog.Log) (*table.Table, error) { return core.GenericCollect(lg) },
	})
	if err != nil {
		return err
	}
	report2, err := fx.Run(context.Background(), core.Config{
		Experiment: "micro_hardened",
		BuildTypes: []string{"gcc_native", "gcc_hardened"},
		Benchmarks: []string{"array_read", "branch_heavy"},
		Input:      workload.SizeTest,
		ModelTime:  deterministic,
	})
	if err != nil {
		return err
	}
	fmt.Println(report2.Table.String())
	if err := testutil.ExportReport(fx, report2, "micro_hardened"); err != nil {
		return err
	}
	fmt.Println("quickstart complete")
	return nil
}
