package main

import (
	"testing"

	"fex/internal/testutil/golden"
)

// TestExampleGolden executes the resumable-run walkthrough end to end in
// deterministic mode and compares the exported cold/warm/extended logs
// and CSVs byte for byte against the committed golden files — the warm
// artifacts being identical to the cold ones IS the resume contract.
// Regenerate with -update. Skipped under -short: it performs real
// installs, builds, and four experiment runs.
func TestExampleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run skipped in -short mode")
	}
	golden.Run(t, func() error { return run(true) }, golden.Options{})
}
