package main

import (
	"os"
	"testing"
)

// TestExamplesRun executes the example end to end — the same run() main
// calls — inside a scratch directory. Skipped under -short: it performs
// real installs, builds, and four full experiment runs.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := run(); err != nil {
		t.Fatalf("example failed: %v", err)
	}
}
