// Resume_adaptive demonstrates the persistent result store: resumable
// runs (-resume) and adaptive repetition counts (-r auto).
//
// The walkthrough:
//
//  1. run the micro suite cold with -r auto — each sweep runs a pilot
//     batch and stops as soon as the confidence interval is tight enough
//     (with --modeled-time the metrics are deterministic, so every sweep
//     stops at the pilot);
//  2. run the same experiment again with -resume — every cell replays
//     from the store, executing zero measured repetitions, and the stored
//     log and CSV stay byte-identical to the cold run;
//  3. extend the experiment with an extra benchmark under -resume — only
//     the new cells are measured (incremental evaluation);
//  4. clean the store and show the next -resume run measures cold again.
//
// A registered hook counts real benchmark executions, making the "zero
// repetitions on resume" claim observable.
package main

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"

	"fex/internal/core"
	"fex/internal/measure"
	"fex/internal/testutil"
	"fex/internal/workload"
)

func main() {
	if err := run(false); err != nil {
		fmt.Fprintln(os.Stderr, "resume_adaptive:", err)
		os.Exit(1)
	}
}

// run executes the walkthrough. The metrics are already modeled
// (deterministic); deterministic mode — the golden end-to-end test —
// additionally pins the log-header clock so the exported artifacts are
// byte-stable.
func run(deterministic bool) error {
	opts := core.Options{}
	if deterministic {
		opts.Now = testutil.Clock()
	}
	fx, err := core.New(opts)
	if err != nil {
		return err
	}
	if _, err := fx.Install("gcc-6.1"); err != nil {
		return err
	}

	// Count measured repetitions through a per-run hook: the default
	// action runs unchanged, the counter just watches it.
	var executed atomic.Int64
	if err := fx.RegisterExperiment(&core.Experiment{
		Name:        "micro_counted",
		Description: "micro suite with counted executions",
		Suite:       "micro",
		Kind:        core.KindPerformance,
		NewRunner: func(fx *core.Fex) (core.Runner, error) {
			return &core.BenchRunner{Suite: "micro", Hooks: core.Hooks{
				PerRunAction: func(rc *core.RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
					executed.Add(1)
					return core.DefaultPerRun(rc, buildType, w, threads)
				},
			}}, nil
		},
		Collect: core.GenericCollect,
	}); err != nil {
		return err
	}

	cfg := core.Config{
		Experiment:   "micro_counted",
		BuildTypes:   []string{"gcc_native", "gcc_asan"},
		Benchmarks:   []string{"array_read", "branch_heavy"},
		Input:        workload.SizeTest,
		AdaptiveReps: true, // -r auto
		ModelTime:    true,
	}

	// --- 1. cold adaptive run -------------------------------------------
	fmt.Println("== cold run with -r auto")
	report, err := fx.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	coldLog, err := fx.ReadResult(report.LogPath)
	if err != nil {
		return err
	}
	fmt.Printf("   %d measurements from %d executed repetitions\n", report.Measurements, executed.Load())
	fmt.Printf("   (deterministic modeled metrics -> every sweep stopped at the %d-rep pilot)\n", core.AdaptivePilot)
	if err := testutil.ExportReport(fx, report, "cold"); err != nil {
		return err
	}

	// --- 2. warm -resume run --------------------------------------------
	fmt.Println("== warm rerun with -resume")
	executed.Store(0)
	warm := cfg
	warm.Resume = true
	report, err = fx.Run(context.Background(), warm)
	if err != nil {
		return err
	}
	warmLog, err := fx.ReadResult(report.LogPath)
	if err != nil {
		return err
	}
	fmt.Printf("   %d measurements from %d executed repetitions\n", report.Measurements, executed.Load())
	if executed.Load() != 0 {
		return fmt.Errorf("resume executed %d repetitions, want 0", executed.Load())
	}
	if string(warmLog) != string(coldLog) {
		return fmt.Errorf("resumed log differs from cold run")
	}
	fmt.Println("   zero repetitions executed; log byte-identical to the cold run")
	if err := testutil.ExportReport(fx, report, "warm"); err != nil {
		return err
	}

	// --- 3. incremental extension ---------------------------------------
	fmt.Println("== extend the experiment under -resume (add alloc_churn)")
	executed.Store(0)
	extended := warm
	extended.Benchmarks = append(append([]string{}, warm.Benchmarks...), "alloc_churn")
	report, err = fx.Run(context.Background(), extended)
	if err != nil {
		return err
	}
	fmt.Printf("   %d measurements, only %d newly executed repetitions (the new benchmark's cells)\n",
		report.Measurements, executed.Load())
	if executed.Load() == 0 {
		return fmt.Errorf("extension measured nothing; expected the new cells to run")
	}
	if err := testutil.ExportReport(fx, report, "extended"); err != nil {
		return err
	}

	// --- 4. fex clean -----------------------------------------------------
	stats, err := fx.ResultStore().Stats()
	if err != nil {
		return err
	}
	fmt.Printf("== store holds %d cells (%d bytes); cleaning\n", stats.Records, stats.Bytes)
	if err := fx.CleanStore(); err != nil {
		return err
	}
	executed.Store(0)
	if _, err := fx.Run(context.Background(), warm); err != nil {
		return err
	}
	fmt.Printf("   after clean, -resume measured cold again: %d executed repetitions\n", executed.Load())
	if executed.Load() == 0 {
		return fmt.Errorf("cleaned store still replayed")
	}
	fmt.Println("resume_adaptive complete")
	return nil
}
