package main

import (
	"testing"

	"fex/internal/testutil/golden"
)

// TestExampleGolden executes the Table II case study end to end and
// compares the exported native/asan logs and CSVs byte for byte against
// the committed golden files. Regenerate with -update. Skipped under
// -short: it performs real installs and builds.
func TestExampleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run skipped in -short mode")
	}
	golden.Run(t, func() error { return run(true) }, golden.Options{})
}
