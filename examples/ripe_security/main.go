// Ripe_security reproduces Table II of the paper: the RIPE security
// testbed (850 attack forms) evaluated against GCC and Clang native builds
// under the paper's deliberately insecure configuration — the §IV-C case
// study ("fex.py run -n ripe -t gcc_native clang_native").
//
// Expected shape: GCC 64 successful / 786 failed, Clang 38 / 812 — the
// Clang advantage comes from its smarter layout of objects in the BSS and
// Data segments, which defeats indirect attacks through those buffers.
// Note that, per the paper, this experiment produces no plot.
package main

import (
	"context"
	"fmt"
	"os"

	"fex/internal/core"
	"fex/internal/testutil"
)

func main() {
	if err := run(false); err != nil {
		fmt.Fprintln(os.Stderr, "ripe_security:", err)
		os.Exit(1)
	}
}

// run executes the Table II case study. The RIPE results themselves are
// fully deterministic; deterministic mode (the golden end-to-end test)
// only pins the log-header clock so the exported artifacts are
// byte-stable.
func run(deterministic bool) error {
	opts := core.Options{}
	if deterministic {
		opts.Now = testutil.Clock()
	}
	fx, err := core.New(opts)
	if err != nil {
		return err
	}
	// Setup stage: compilers plus the RIPE sources.
	for _, artifact := range []string{"gcc-6.1", "clang-3.8.0", "ripe"} {
		if _, err := fx.Install(artifact); err != nil {
			return err
		}
	}

	report, err := fx.Run(context.Background(), core.Config{
		Experiment: "ripe",
		BuildTypes: []string{"gcc_native", "clang_native"},
	})
	if err != nil {
		return err
	}
	fmt.Println("Table II — RIPE security benchmark results")
	fmt.Println(report.Table.String())
	if err := testutil.ExportReport(fx, report, "ripe_native"); err != nil {
		return err
	}

	// Bonus beyond the paper's table: the instrumented build types stop
	// essentially all attack forms.
	asan, err := fx.Run(context.Background(), core.Config{
		Experiment: "ripe",
		BuildTypes: []string{"gcc_asan", "clang_asan"},
	})
	if err != nil {
		return err
	}
	fmt.Println("With AddressSanitizer:")
	fmt.Println(asan.Table.String())
	return testutil.ExportReport(fx, asan, "ripe_asan")
}
