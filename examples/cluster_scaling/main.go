// Cluster_scaling demonstrates the distributed execution tier: the same
// experiment run serially, on the local parallel scheduler, and fanned
// out across a cluster of worker hosts — with byte-identical results in
// all three modes.
//
// The paper lists distributed experiments as future work ("e.g., using
// the Fabric library", §IV-B); this walkthrough shows the reproduction's
// version of it:
//
//  1. run the splash suite serially (the paper-faithful loop),
//  2. run it again with -jobs 4 (local worker pool),
//  3. run it again with -hosts w1,w2,w3 (cluster workers, one container
//     and build system per host),
//  4. prove all three stored logs and CSVs are byte-identical,
//  5. kill a host mid-cluster-run and show failover keeps the result
//     byte-identical anyway.
//
// --modeled-time makes the wall-clock metric a pure function of the
// workload, so the comparison covers every byte of the log.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"fex/internal/core"
	"fex/internal/remote"
	"fex/internal/workload"
)

func main() {
	if err := run(false); err != nil {
		fmt.Fprintln(os.Stderr, "cluster_scaling:", err)
		os.Exit(1)
	}
}

// fixedClock keeps the log header timestamp identical across the compared
// runs (a real deployment compares runs from one invocation's clock).
func fixedClock() time.Time { return time.Date(2017, 6, 26, 12, 0, 0, 0, time.UTC) }

// runSplash executes the splash experiment on a fresh framework with the
// given scheduling configuration and returns the stored log and CSV.
func runSplash(cluster *remote.Cluster, jobs int, hosts []string) (string, string, time.Duration, error) {
	fx, err := core.New(core.Options{Now: fixedClock, Cluster: cluster})
	if err != nil {
		return "", "", 0, err
	}
	for _, artifact := range []string{"gcc-6.1", "clang-3.8.0"} {
		if _, err := fx.Install(artifact); err != nil {
			return "", "", 0, err
		}
	}
	start := time.Now()
	report, err := fx.Run(context.Background(), core.Config{
		Experiment: "splash",
		BuildTypes: []string{"gcc_native", "clang_native"},
		Threads:    []int{1, 2},
		Reps:       2,
		Input:      workload.SizeTest,
		Jobs:       jobs,
		Hosts:      hosts,
		ModelTime:  true,
	})
	if err != nil {
		return "", "", 0, err
	}
	elapsed := time.Since(start)
	lg, err := fx.ReadResult(report.LogPath)
	if err != nil {
		return "", "", 0, err
	}
	csv, err := fx.ReadResult(report.CSVPath)
	if err != nil {
		return "", "", 0, err
	}
	return string(lg), string(csv), elapsed, nil
}

// run executes the walkthrough. The compared runs are already fully
// deterministic (fixed clock, modeled time) — that is the point of the
// example — so the deterministic flag only matches the golden harness's
// calling convention.
func run(deterministic bool) error {
	_ = deterministic
	fmt.Println("== serial run (-jobs 1, the paper's loop)")
	serialLog, serialCSV, serialT, err := runSplash(nil, 1, nil)
	if err != nil {
		return err
	}
	fmt.Printf("   done in %v\n", serialT.Round(time.Millisecond))

	fmt.Println("== local parallel run (-jobs 4)")
	parLog, parCSV, parT, err := runSplash(nil, 4, nil)
	if err != nil {
		return err
	}
	fmt.Printf("   done in %v\n", parT.Round(time.Millisecond))

	fmt.Println("== cluster run (-hosts w1,w2,w3)")
	clusterLog, clusterCSV, clusterT, err := runSplash(nil, 1, []string{"w1", "w2", "w3"})
	if err != nil {
		return err
	}
	fmt.Printf("   done in %v\n", clusterT.Round(time.Millisecond))

	if parLog != serialLog || clusterLog != serialLog {
		return fmt.Errorf("determinism contract violated: run logs differ across modes")
	}
	if parCSV != serialCSV || clusterCSV != serialCSV {
		return fmt.Errorf("determinism contract violated: CSVs differ across modes")
	}
	fmt.Println("   logs and CSVs byte-identical across serial, parallel, and cluster")
	// Export the (shared) artifacts for inspection and the golden harness.
	if err := os.WriteFile("splash.log", []byte(serialLog), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile("splash.csv", []byte(serialCSV), 0o644); err != nil {
		return err
	}

	// Failover: take one host down before the run; its cells move to the
	// surviving hosts and the stored result does not change by one byte.
	fmt.Println("== cluster run with w2 down (failover)")
	cluster := remote.NewCluster()
	for _, h := range []string{"w1", "w2", "w3"} {
		if _, err := cluster.Ensure(h); err != nil {
			return err
		}
	}
	w2, err := cluster.Host("w2")
	if err != nil {
		return err
	}
	w2.SetUnreachable(true)
	failLog, failCSV, failT, err := runSplash(cluster, 1, []string{"w1", "w2", "w3"})
	if err != nil {
		return err
	}
	fmt.Printf("   done in %v on the 2 surviving hosts\n", failT.Round(time.Millisecond))
	if failLog != serialLog || failCSV != serialCSV {
		return fmt.Errorf("failover perturbed the stored results")
	}
	fmt.Println("   output still byte-identical: the outage is invisible in the experiment record")
	fmt.Println("cluster_scaling complete")
	return nil
}
