package main

import (
	"testing"

	"fex/internal/testutil/golden"
)

// TestExampleGolden executes the cluster walkthrough end to end and
// compares the exported splash log and CSV — already proven
// byte-identical across the serial, parallel, and cluster tiers inside
// the example — against the committed golden files. Regenerate with
// -update. Skipped under -short: it performs real installs, builds, and
// four full experiment runs.
func TestExampleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run skipped in -short mode")
	}
	golden.Run(t, func() error { return run(true) }, golden.Options{})
}
