// Diff_gate demonstrates the cross-run differential analyzer: comparing
// two stored run sets statistically ("fex diff") and gating CI on the
// verdict ("fex gate").
//
// The walkthrough:
//
//  1. run the micro suite with --modeled-time and export the result
//     store as a baseline directory — the committable run-set format;
//  2. run the same configuration again on a completely fresh framework
//     and diff it against the baseline: every cell joins, and with
//     modeled (machine-independent) time there are zero significant
//     deltas — the gate passes;
//  3. simulate a regressed candidate by scaling one build type's wall
//     time and diff again: the regression is flagged with a p-value and
//     disjoint confidence intervals, a 10% gate fails, a 50% gate
//     tolerates it, and the report renders as a table, a speedup chart,
//     and canonical JSON.
//
// This is how fex gates itself in CI: a baseline exported from a known-
// good run is committed, and every build re-runs the experiment and
// gates against it.
package main

import (
	"context"
	"fmt"
	"os"
	"regexp"
	"strconv"

	"fex/internal/core"
	"fex/internal/diff"
	"fex/internal/testutil"
	"fex/internal/workload"
)

func main() {
	if err := run(false); err != nil {
		fmt.Fprintln(os.Stderr, "diff_gate:", err)
		os.Exit(1)
	}
}

// runOnce executes the shared experiment configuration on a fresh
// framework and returns its result store as a run set.
func runOnce(source string) (*diff.RunSet, error) {
	fx, err := core.New(core.Options{Now: testutil.Clock()})
	if err != nil {
		return nil, err
	}
	if _, err := fx.Install("gcc-6.1"); err != nil {
		return nil, err
	}
	if _, err := fx.Run(context.Background(), core.Config{
		Experiment: "micro",
		BuildTypes: []string{"gcc_native", "gcc_asan"},
		Benchmarks: []string{"array_read", "branch_heavy"},
		Input:      workload.SizeTest,
		Reps:       3,
		ModelTime:  true, // machine-independent metrics: reruns are byte-identical
	}); err != nil {
		return nil, err
	}
	return diff.FromStore(fx.ResultStore(), source)
}

// run executes the walkthrough. Both compared runs are already fully
// deterministic (fixed clock, modeled time), so the deterministic flag
// only matches the golden harness's calling convention.
func run(deterministic bool) error {
	_ = deterministic

	// --- 1. baseline run, exported as a committable directory -----------
	fmt.Println("== baseline run (exported to ./baseline)")
	baseline, err := runOnce("baseline-run")
	if err != nil {
		return err
	}
	if err := diff.WriteDir(baseline, "baseline"); err != nil {
		return err
	}
	fmt.Printf("   %d cells, digest %.12s\n", len(baseline.Cells), baseline.Digest())

	// --- 2. fresh candidate run, diffed against the baseline ------------
	fmt.Println("== candidate rerun on a fresh framework")
	baseBack, err := diff.LoadDir("baseline")
	if err != nil {
		return err
	}
	candidate, err := runOnce("candidate-run")
	if err != nil {
		return err
	}
	report, err := diff.Compare(baseBack, candidate, diff.Options{})
	if err != nil {
		return err
	}
	text, err := report.AppendText(nil)
	if err != nil {
		return err
	}
	os.Stdout.Write(text)
	if n := len(report.Significant()); n != 0 {
		return fmt.Errorf("identical modeled runs produced %d significant deltas", n)
	}
	if gate := report.Gate(0); !gate.OK() {
		return fmt.Errorf("gate failed on identical runs: %s", gate)
	}
	fmt.Println("   zero significant deltas; gate passes")

	// --- 3. a planted regression trips the gate --------------------------
	fmt.Println("== planted +35% regression in gcc_asan")
	slow, err := plantRegression(candidate, "gcc_asan", 1.35)
	if err != nil {
		return err
	}
	slowReport, err := diff.Compare(baseBack, slow, diff.Options{})
	if err != nil {
		return err
	}
	slowText, err := slowReport.AppendText(nil)
	if err != nil {
		return err
	}
	os.Stdout.Write(slowText)
	if err := os.WriteFile("diff.txt", slowText, 0o644); err != nil {
		return err
	}
	strict := slowReport.Gate(10)
	if strict.OK() {
		return fmt.Errorf("10%% gate missed the planted regression")
	}
	fmt.Println("   " + strict.String())
	tolerant := slowReport.Gate(50)
	if !tolerant.OK() {
		return fmt.Errorf("50%% gate failed on a 35%% regression: %s", tolerant)
	}
	fmt.Println("   " + tolerant.String())

	// The three renderings of the regression report.
	csv, err := slowReport.CSV()
	if err != nil {
		return err
	}
	if err := os.WriteFile("fexdiff.csv", csv, 0o644); err != nil {
		return err
	}
	js, err := diff.EncodeReport(slowReport)
	if err != nil {
		return err
	}
	if err := os.WriteFile("fexdiff.json", js, 0o644); err != nil {
		return err
	}
	// The canonical JSON round-trips strictly.
	if _, err := diff.DecodeReport(js); err != nil {
		return fmt.Errorf("report does not round-trip: %w", err)
	}
	svg, err := slowReport.ChartSVG()
	if err != nil {
		return err
	}
	if err := os.WriteFile("fexdiff.svg", []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote diff.txt, fexdiff.csv, fexdiff.json, fexdiff.svg")
	fmt.Println("diff_gate complete")
	return nil
}

// plantRegression copies a run set, scaling every wall_ns sample of the
// given build type by factor — a synthetic "the new compiler made ASan
// builds slower" candidate.
func plantRegression(rs *diff.RunSet, buildType string, factor float64) (*diff.RunSet, error) {
	wallRe := regexp.MustCompile(`wall_ns=([0-9.e+\-]+)`)
	out := &diff.RunSet{Source: "regressed-run", Cells: append([]diff.Cell(nil), rs.Cells...)}
	for i, c := range out.Cells {
		if c.Fingerprint.BuildType != buildType {
			continue
		}
		var replaceErr error
		out.Cells[i].Payload = wallRe.ReplaceAllFunc(append([]byte(nil), c.Payload...), func(m []byte) []byte {
			v, err := strconv.ParseFloat(string(m[len("wall_ns="):]), 64)
			if err != nil {
				replaceErr = err
				return m
			}
			return []byte("wall_ns=" + strconv.FormatFloat(v*factor, 'g', -1, 64))
		})
		if replaceErr != nil {
			return nil, replaceErr
		}
	}
	return out, nil
}
