package main

import (
	"testing"

	"fex/internal/testutil/golden"
)

// TestExampleGolden executes the diff/gate walkthrough end to end and
// compares every artifact — the exported baseline run-set directory, the
// rendered diff text, and the CSV/JSON/SVG report renderings — byte for
// byte against the committed golden files. Regenerate with -update.
// Skipped under -short: it performs real installs, builds, and two full
// experiment runs.
func TestExampleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run skipped in -short mode")
	}
	golden.Run(t, func() error { return run(true) }, golden.Options{})
}
