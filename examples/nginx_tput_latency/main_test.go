package main

import (
	"regexp"
	"strings"
	"testing"

	"fex/internal/testutil/golden"
)

// Volatile fields of the live load-generation sweep: every numeric metric
// value in RUN records — including offered_rate, which derives from a
// live capacity calibration and so differs per host — the free-form
// client-log NOTE lines, and every numeric CSV cell. What stays golden is
// the record structure only: the number of sweep points, the
// benchmark/type/threads keys, the column schema, and the metric names.
var (
	runMetricRe = regexp.MustCompile(`(offered_rate|throughput|latency_ms|p50_ms|p95_ms|p99_ms|completed|errors|dropped)=[^|\n]*`)
	csvNumberRe = regexp.MustCompile(`-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?`)
)

// scrub normalizes the nondeterministic artifacts: measured values become
// "#" placeholders, client-side NOTE payloads are dropped, and the SVG —
// whose every coordinate depends on the measured values — is excluded.
func scrub(name string, data []byte) []byte {
	switch {
	case strings.HasSuffix(name, ".svg"):
		return nil
	case strings.HasSuffix(name, ".log"):
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			if strings.HasPrefix(line, "NOTE|") {
				lines[i] = "NOTE|#"
				continue
			}
			lines[i] = runMetricRe.ReplaceAllString(line, "$1=#")
		}
		return []byte(strings.Join(lines, "\n"))
	case strings.HasSuffix(name, ".csv"):
		lines := strings.Split(string(data), "\n")
		for i := 1; i < len(lines); i++ { // keep the header row verbatim
			lines[i] = csvNumberRe.ReplaceAllString(lines[i], "#")
		}
		return []byte(strings.Join(lines, "\n"))
	default:
		return data
	}
}

// TestExampleGolden executes the Figure 7 case study end to end and
// compares the exported log and CSV — with the live measured values
// normalized by scrub — against the committed golden files. Regenerate
// with -update. Skipped under -short: it performs real installs, builds,
// and a live server load sweep.
func TestExampleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run skipped in -short mode")
	}
	golden.Run(t, func() error { return run(true) }, golden.Options{Scrub: scrub})
}
