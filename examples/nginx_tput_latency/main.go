// Nginx_tput_latency reproduces Figure 7 of the paper: the Nginx
// throughput–latency comparison between GCC and Clang builds, with remote
// clients fetching a 2K static web page — the §IV-B case study
// ("fex.py run -n nginx -t gcc_native clang_native").
//
// The experiment starts the web server under each build type, drives an
// open-loop offered-rate sweep from a (simulated-remote) client host, and
// plots latency against achieved throughput. Output: a sweep table and
// nginx_fig7.svg.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"fex/internal/core"
	"fex/internal/runlog"
	"fex/internal/table"
	"fex/internal/testutil"
)

func main() {
	if err := run(false); err != nil {
		fmt.Fprintln(os.Stderr, "nginx_tput_latency:", err)
		os.Exit(1)
	}
}

// run executes the Figure 7 case study. The sweep drives a live load
// generator, so the measured values are genuinely nondeterministic;
// deterministic mode only pins the log-header clock, and the golden
// end-to-end test normalizes the volatile metric values before
// comparing (the sweep STRUCTURE — rates, rows, columns — is stable).
func run(deterministic bool) error {
	opts := core.Options{}
	if deterministic {
		opts.Now = testutil.Clock()
	}
	fx, err := core.New(opts)
	if err != nil {
		return err
	}
	// Setup stage: compilers plus the Nginx sources (installed from the
	// repository, not shipped — the paper pins 1.4.1, the CVE-fixed one).
	for _, artifact := range []string{"gcc-6.1", "clang-3.8.0", "nginx-1.4.1"} {
		if _, err := fx.Install(artifact); err != nil {
			return err
		}
	}

	// Register a tuned variant of the Nginx experiment: the same runner
	// as the built-in one with an explicit sweep (this mirrors the 89-LoC
	// custom run.py of §IV-B).
	err = fx.RegisterExperiment(&core.Experiment{
		Name:        "nginx_fig7",
		Description: "Figure 7: nginx throughput-latency sweep",
		Kind:        core.KindThroughputLatency,
		NewRunner: func(fx *core.Fex) (core.Runner, error) {
			return &core.ServerBenchRunner{
				App:      "nginx",
				Duration: 500 * time.Millisecond,
				Workers:  4,
				// Rates left empty: the runner probes server capacity and
				// sweeps fractions of it, so the saturation knee is visible
				// on any host.
			}, nil
		},
		Collect:  func(lg *runlog.Log) (*table.Table, error) { return core.NetCollect(lg) },
		CSVKinds: core.NetCSVKinds(),
		Plot: func(tbl *table.Table, kind string) (string, error) {
			return core.ThroughputLatencyPlot(tbl, "nginx: throughput vs latency (Figure 7)")
		},
	})
	if err != nil {
		return err
	}

	report, err := fx.Run(context.Background(), core.Config{
		Experiment: "nginx_fig7",
		BuildTypes: []string{"gcc_native", "clang_native"},
	})
	if err != nil {
		return err
	}
	fmt.Println("Figure 7 — throughput vs latency sweep")
	fmt.Println(report.Table.String())
	if err := testutil.ExportReport(fx, report, "nginx_fig7"); err != nil {
		return err
	}

	svg, err := fx.Plot("nginx_fig7", "tput-latency")
	if err != nil {
		return err
	}
	if err := os.WriteFile("nginx_fig7.svg", []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote nginx_fig7.svg")

	// Report the saturation knees: Clang should saturate earlier.
	tputs, err := report.Table.Floats("throughput")
	if err != nil {
		return err
	}
	types, err := report.Table.Strings("type")
	if err != nil {
		return err
	}
	peak := map[string]float64{}
	for i := range tputs {
		if tputs[i] > peak[types[i]] {
			peak[types[i]] = tputs[i]
		}
	}
	fmt.Printf("peak throughput: gcc=%.0f req/s, clang=%.0f req/s\n",
		peak["gcc_native"], peak["clang_native"])
	return nil
}
