package main

import (
	"testing"

	"fex/internal/testutil/golden"
)

// TestExampleGolden executes the Figure 6 case study end to end in
// deterministic mode and compares the exported splash log/CSV and the
// rendered SVG byte for byte against the committed golden files.
// Regenerate with -update. Skipped under -short: it performs real
// installs, builds, and experiment runs.
func TestExampleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end example run skipped in -short mode")
	}
	golden.Run(t, func() error { return run(true) }, golden.Options{})
}
