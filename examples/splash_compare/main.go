// Splash_compare reproduces Figure 6 of the paper: the Clang-vs-GCC
// comparison on the SPLASH-3 suite, run end to end through the framework —
// the §IV-A case study ("fex.py run -n splash -t gcc_native clang_native").
//
// Output: a table of per-benchmark normalized runtimes (w.r.t. native
// GCC), the "All" geometric mean, and splash_fig6.svg.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"fex/internal/core"
	"fex/internal/stats"
	"fex/internal/testutil"
	"fex/internal/workload"
)

func main() {
	if err := run(false); err != nil {
		fmt.Fprintln(os.Stderr, "splash_compare:", err)
		os.Exit(1)
	}
}

// run executes the case study; deterministic mode (the golden end-to-end
// test) pins the clock and records modeled wall time so the exported
// artifacts are byte-stable.
func run(deterministic bool) error {
	opts := core.Options{}
	if deterministic {
		opts.Now = testutil.Clock()
	}
	fx, err := core.New(opts)
	if err != nil {
		return err
	}
	// Setup stage: both compilers, pinned versions.
	for _, artifact := range []string{"gcc-6.1", "clang-3.8.0", "splash_inputs"} {
		if _, err := fx.Install(artifact); err != nil {
			return err
		}
	}

	// fex run -n splash -t gcc_native clang_native
	report, err := fx.Run(context.Background(), core.Config{
		Experiment: "splash",
		BuildTypes: []string{"gcc_native", "clang_native"},
		Input:      workload.SizeSmall,
		Reps:       2,
		ModelTime:  deterministic,
	})
	if err != nil {
		return err
	}
	if err := testutil.ExportReport(fx, report, "splash"); err != nil {
		return err
	}

	// Per-benchmark clang/gcc ratio from the collected table.
	benches, err := report.Table.Strings("bench")
	if err != nil {
		return err
	}
	types, err := report.Table.Strings("type")
	if err != nil {
		return err
	}
	cycles, err := report.Table.Floats("cycles")
	if err != nil {
		return err
	}
	byKey := map[[2]string]float64{}
	for i := range benches {
		byKey[[2]string{benches[i], types[i]}] = cycles[i]
	}
	names := map[string]bool{}
	for _, b := range benches {
		names[b] = true
	}
	ordered := make([]string, 0, len(names))
	for b := range names {
		ordered = append(ordered, b)
	}
	sort.Strings(ordered)

	fmt.Println("Figure 6 — Normalized runtime (w.r.t. native GCC)")
	fmt.Println("benchmark        Native (Clang)")
	var ratios []float64
	for _, b := range ordered {
		g := byKey[[2]string{b, "gcc_native"}]
		c := byKey[[2]string{b, "clang_native"}]
		r := c / g
		ratios = append(ratios, r)
		fmt.Printf("%-16s %.3f\n", b, r)
	}
	gm, err := stats.GeoMean(ratios)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %.3f\n", "All (geomean)", gm)

	svg, err := fx.Plot("splash", "perf")
	if err != nil {
		return err
	}
	if err := os.WriteFile("splash_fig6.svg", []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote splash_fig6.svg")
	return nil
}
