// Package fex_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index):
//
//	BenchmarkFigure6_SplashClangVsGCC      Figure 6  (normalized runtime barplot)
//	BenchmarkFigure7_NginxThroughputLatency Figure 7 (throughput–latency curves)
//	BenchmarkTable1_SupportedInventory     Table I   (supported experiments)
//	BenchmarkTable2_RIPESecurity           Table II  (RIPE success/fail counts)
//	BenchmarkTable3_ExtensionEffort        §IV LoC-effort evaluation
//	BenchmarkFigureA_ImageSize             §II-A image-size footnote
//
// plus ablation benches for the design decisions the paper calls out
// (rebuild-per-experiment vs --no-build, dry runs, repetition counts,
// thread scaling). Absolute numbers are not expected to match the paper's
// testbed; the benches assert and report the published *shape* via
// b.ReportMetric.
package fex_test

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fex/internal/container"
	"fex/internal/core"
	"fex/internal/measure"
	"fex/internal/remote"
	"fex/internal/runlog"
	"fex/internal/security"
	"fex/internal/stats"
	"fex/internal/store"
	"fex/internal/toolchain"
	"fex/internal/vfs"
	"fex/internal/workload"
)

// newFexB builds a framework instance for a benchmark.
func newFexB(b *testing.B, installs ...string) *core.Fex {
	b.Helper()
	fx, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range installs {
		if _, err := fx.Install(n); err != nil {
			b.Fatal(err)
		}
	}
	return fx
}

var printOnce sync.Map

// printTable prints a regenerated table exactly once per bench name, so
// the harness output carries the same rows/series the paper reports.
func printTable(name, content string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n=== %s ===\n%s\n", name, content)
	}
}

// BenchmarkFigure6_SplashClangVsGCC regenerates Figure 6: SPLASH-3
// normalized runtime of Clang over native GCC, per benchmark plus the
// geometric mean. Reported metrics: the fft ratio (the paper's outlier)
// and the geomean.
func BenchmarkFigure6_SplashClangVsGCC(b *testing.B) {
	fx := newFexB(b, "gcc-6.1", "clang-3.8.0", "splash_inputs")
	var fftRatio, geomean float64
	for i := 0; i < b.N; i++ {
		report, err := fx.Run(context.Background(), core.Config{
			Experiment: "splash",
			BuildTypes: []string{"gcc_native", "clang_native"},
			Input:      workload.SizeTest,
		})
		if err != nil {
			b.Fatal(err)
		}
		benches, _ := report.Table.Strings("bench")
		types, _ := report.Table.Strings("type")
		cycles, _ := report.Table.Floats("cycles")
		byKey := map[[2]string]float64{}
		nameSet := map[string]bool{}
		for j := range benches {
			byKey[[2]string{benches[j], types[j]}] = cycles[j]
			nameSet[benches[j]] = true
		}
		names := make([]string, 0, len(nameSet))
		for n := range nameSet {
			names = append(names, n)
		}
		sort.Strings(names)
		var ratios []float64
		var rows string
		for _, n := range names {
			r := byKey[[2]string{n, "clang_native"}] / byKey[[2]string{n, "gcc_native"}]
			ratios = append(ratios, r)
			if n == "fft" {
				fftRatio = r
			}
			rows += fmt.Sprintf("%-16s %.3f\n", n, r)
		}
		gm, err := stats.GeoMean(ratios)
		if err != nil {
			b.Fatal(err)
		}
		geomean = gm
		rows += fmt.Sprintf("%-16s %.3f\n", "All (geomean)", gm)
		printTable("Figure 6: normalized runtime w.r.t. native GCC", rows)
	}
	// Shape assertions: Clang slightly worse overall, much worse on fft.
	if geomean <= 1.0 || geomean >= 1.5 {
		b.Fatalf("geomean %v outside the published shape (slightly above 1)", geomean)
	}
	if fftRatio <= 1.3 {
		b.Fatalf("fft ratio %v — fft must be the Figure 6 outlier", fftRatio)
	}
	b.ReportMetric(fftRatio, "fft-ratio")
	b.ReportMetric(geomean, "geomean-ratio")
}

// BenchmarkFigure7_NginxThroughputLatency regenerates Figure 7: the
// throughput–latency sweep of the web server under GCC and Clang builds.
// Reported metrics: peak achieved throughput per build type; the shape
// assertion is that Clang's knee is below GCC's.
func BenchmarkFigure7_NginxThroughputLatency(b *testing.B) {
	fx := newFexB(b, "gcc-6.1", "clang-3.8.0", "nginx-1.4.1")
	if err := fx.RegisterExperiment(&core.Experiment{
		Name: "nginx_bench",
		Kind: core.KindThroughputLatency,
		NewRunner: func(fx *core.Fex) (core.Runner, error) {
			return &core.ServerBenchRunner{
				App:      "nginx",
				Duration: 300 * time.Millisecond,
				Workers:  4,
			}, nil
		},
		Collect:  core.NetCollect,
		CSVKinds: core.NetCSVKinds(),
	}); err != nil {
		b.Fatal(err)
	}
	var peakGCC, peakClang float64
	for i := 0; i < b.N; i++ {
		report, err := fx.Run(context.Background(), core.Config{
			Experiment: "nginx_bench",
			BuildTypes: []string{"gcc_native", "clang_native"},
		})
		if err != nil {
			b.Fatal(err)
		}
		types, _ := report.Table.Strings("type")
		tput, _ := report.Table.Floats("throughput")
		lat, _ := report.Table.Floats("latency_ms")
		peakGCC, peakClang = 0, 0
		var rows string
		for j := range types {
			rows += fmt.Sprintf("%-14s tput=%8.0f req/s  lat=%8.2f ms\n", types[j], tput[j], lat[j])
			switch types[j] {
			case "gcc_native":
				if tput[j] > peakGCC {
					peakGCC = tput[j]
				}
			case "clang_native":
				if tput[j] > peakClang {
					peakClang = tput[j]
				}
			}
		}
		printTable("Figure 7: nginx throughput-latency sweep", rows)
	}
	b.ReportMetric(peakGCC, "gcc-peak-rps")
	b.ReportMetric(peakClang, "clang-peak-rps")
	// Shape: Clang saturates at or below GCC (generous slack: live
	// network measurement on a shared host is noisy).
	if peakClang > peakGCC*1.15 {
		b.Fatalf("clang peak %v clearly above gcc peak %v — shape violated", peakClang, peakGCC)
	}
}

// BenchmarkTable1_SupportedInventory regenerates Table I from the live
// registries.
func BenchmarkTable1_SupportedInventory(b *testing.B) {
	fx := newFexB(b)
	var inv core.Inventory
	for i := 0; i < b.N; i++ {
		inv = fx.BuildInventory()
	}
	printTable("Table I: currently supported experiments", inv.String())
	b.ReportMetric(float64(len(inv.BenchmarkSuites)), "suites")
	b.ReportMetric(float64(len(inv.Types)), "build-types")
	b.ReportMetric(float64(len(inv.Plots)), "plot-kinds")
}

// BenchmarkTable2_RIPESecurity regenerates Table II: RIPE successful and
// failed attack counts for GCC and Clang native builds.
func BenchmarkTable2_RIPESecurity(b *testing.B) {
	fx := newFexB(b, "gcc-6.1", "clang-3.8.0", "ripe")
	var gccSucc, clangSucc float64
	for i := 0; i < b.N; i++ {
		report, err := fx.Run(context.Background(), core.Config{
			Experiment: "ripe",
			BuildTypes: []string{"gcc_native", "clang_native"},
		})
		if err != nil {
			b.Fatal(err)
		}
		printTable("Table II: RIPE security benchmark results", report.Table.String())
		types, _ := report.Table.Strings("type")
		succ, _ := report.Table.Floats("successful")
		for j := range types {
			switch types[j] {
			case "gcc_native":
				gccSucc = succ[j]
			case "clang_native":
				clangSucc = succ[j]
			}
		}
	}
	if gccSucc != 64 || clangSucc != 38 {
		b.Fatalf("got gcc=%v clang=%v, want 64/38 (Table II)", gccSucc, clangSucc)
	}
	b.ReportMetric(gccSucc, "gcc-successful")
	b.ReportMetric(clangSucc, "clang-successful")
}

// BenchmarkTable3_ExtensionEffort regenerates the §IV effort evaluation:
// LoC of the three case-study extension units, measured over this
// repository with a real LoC counter.
func BenchmarkTable3_ExtensionEffort(b *testing.B) {
	var results []core.EffortResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = core.MeasureEffort(".", core.CaseStudyUnits())
		if err != nil {
			b.Fatal(err)
		}
	}
	var rows string
	byName := map[string]core.EffortResult{}
	for _, r := range results {
		rows += fmt.Sprintf("%-10s paper=%4d LoC   measured=%4d LoC (%d files)\n",
			r.Name, r.PaperLoC, r.MeasuredLoC, r.Files)
		byName[r.Name] = r
		b.ReportMetric(float64(r.MeasuredLoC), r.Name+"-loc")
	}
	printTable("Extension effort (paper vs measured)", rows)
	// Shape: every unit in the low hundreds, ordering RIPE < Nginx < SPLASH.
	if !(byName["ripe"].MeasuredLoC < byName["nginx"].MeasuredLoC &&
		byName["nginx"].MeasuredLoC < byName["splash-3"].MeasuredLoC) {
		b.Fatalf("effort ordering violated: %+v", results)
	}
}

// BenchmarkFigureA_ImageSize regenerates the §II-A footnote: the shipped
// image is ~1.04 GB (122 MB Ubuntu + 300 MB sources + helpers), versus
// ~17 GB for a fully pre-installed image.
func BenchmarkFigureA_ImageSize(b *testing.B) {
	var im *container.Image
	for i := 0; i < b.N; i++ {
		var err error
		im, err = container.BuildBaseImage(container.BaseImageConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	var rows string
	for _, part := range im.Breakdown() {
		rows += fmt.Sprintf("%-20s %7.1f MB\n", part.Layer, float64(part.Bytes)/(1<<20))
	}
	rows += fmt.Sprintf("%-20s %7.2f GB (fully installed: %d GB)\n",
		"total", float64(im.Size())/(1<<30), container.FullyInstalledBytes/(1<<30))
	printTable("Image size breakdown (§II-A footnote)", rows)
	b.ReportMetric(float64(im.Size())/(1<<30), "image-GB")
}

// BenchmarkAblation_RebuildVsNoBuild quantifies the cost of the paper's
// rebuild-before-every-experiment rule against --no-build reuse.
func BenchmarkAblation_RebuildVsNoBuild(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noBuild bool
	}{{"rebuild", false}, {"no-build", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			fx := newFexB(b, "gcc-6.1")
			cfg := core.Config{
				Experiment: "micro",
				BuildTypes: []string{"gcc_native"},
				Benchmarks: []string{"array_read"},
				Input:      workload.SizeTest,
				NoBuild:    mode.noBuild,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !mode.noBuild {
					// Cross-experiment artifact sharing keeps the previous
					// iteration's builds warm; wipe them so every iteration
					// pays the full rebuild this arm quantifies.
					if err := fx.BuildSystem().CleanBuild(); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := fx.Run(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_LoadAware quantifies the load-aware cluster
// scheduler on a skewed host set: three hosts, one of which serves each
// cell 40ms slower. Latency-weighted placement routes cells away from
// the slow host and work-stealing drains whatever queued behind it, so
// the run's makespan must beat the -no-load-aware -no-steal ablation
// (blind round-robin deals the slow host a third of the cells and then
// waits for it). Speculation is off in both arms to isolate placement.
func BenchmarkAblation_LoadAware(b *testing.B) {
	const slowPenalty = 40 * time.Millisecond
	hooks := core.Hooks{
		PerBenchmarkAction: func(rc *core.RunContext, buildType string, w workload.Workload) error {
			return nil
		},
		PerRunAction: func(rc *core.RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
			return measure.FromMap(map[string]float64{"cycles": float64(len(w.Name())*1000 + len(buildType)*100 + threads)}), nil
		},
	}
	run := func(ablated bool) time.Duration {
		cluster := remote.NewCluster()
		for _, h := range []string{"w1", "w2", "w3"} {
			if _, err := cluster.Ensure(h); err != nil {
				b.Fatal(err)
			}
		}
		fx, err := core.New(core.Options{Cluster: cluster})
		if err != nil {
			b.Fatal(err)
		}
		if err := fx.RegisterExperiment(&core.Experiment{
			Name: "load_aware_ablation",
			Kind: core.KindPerformance,
			NewRunner: func(fx *core.Fex) (core.Runner, error) {
				return &core.BenchRunner{Suite: "splash", Hooks: hooks}, nil
			},
			Collect: core.GenericCollect,
		}); err != nil {
			b.Fatal(err)
		}
		w1, err := cluster.Host("w1")
		if err != nil {
			b.Fatal(err)
		}
		w1.SetCommandLatency("run-cell", slowPenalty)
		cfg := core.Config{
			Experiment:  "load_aware_ablation",
			BuildTypes:  []string{"gcc_native", "clang_native", "gcc_asan"},
			Benchmarks:  []string{"fft", "lu", "radix"},
			Input:       workload.SizeTest,
			Hosts:       []string{"w1", "w2", "w3"},
			NoSpeculate: true,
			NoLoadAware: ablated,
			NoSteal:     ablated,
		}
		start := time.Now()
		if _, err := fx.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var aware, blind time.Duration
	for i := 0; i < b.N; i++ {
		aware = run(false)
		blind = run(true)
	}
	speedup := blind.Seconds() / aware.Seconds()
	// Expected shape: blind serializes ~3 cells on the slow host (~3x the
	// penalty), load-aware leaves it ~1 — roughly a 2-3x makespan win; 1.3x
	// is the generous floor for noisy shared hosts.
	if speedup < 1.3 {
		b.Fatalf("load-aware makespan %v vs ablated %v: speedup %.2fx below the 1.3x floor", aware, blind, speedup)
	}
	printTable("Load-aware scheduling ablation (9 cells, 1 of 3 hosts 40ms slow)",
		fmt.Sprintf("load-aware+steal=%v  round-robin=%v  speedup=%.2fx\n",
			aware.Round(time.Millisecond), blind.Round(time.Millisecond), speedup))
	b.ReportMetric(float64(aware.Milliseconds()), "aware-makespan-ms")
	b.ReportMetric(float64(blind.Milliseconds()), "blind-makespan-ms")
	b.ReportMetric(speedup, "makespan-speedup")
}

// BenchmarkAblation_DryRun quantifies the Phoenix dry-run hook's cost
// (the per_benchmark_action of §II-A).
func BenchmarkAblation_DryRun(b *testing.B) {
	fx := newFexB(b, "gcc-6.1")
	noDry := core.Hooks{
		PerBenchmarkAction: func(rc *core.RunContext, buildType string, w workload.Workload) error {
			_, err := rc.Fex.Artifact(w, buildType, rc.Config.Debug)
			return err
		},
	}
	for _, mode := range []struct {
		name  string
		hooks core.Hooks
	}{{"with-dry-run", core.Hooks{}}, {"without-dry-run", noDry}} {
		mode := mode
		// Register outside the measured callback: the benchmark framework
		// re-invokes the callback while calibrating b.N.
		name := "phoenix_dry_" + mode.name
		if err := fx.RegisterExperiment(&core.Experiment{
			Name: name,
			Kind: core.KindPerformance,
			NewRunner: func(fx *core.Fex) (core.Runner, error) {
				return &core.BenchRunner{Suite: "phoenix", Hooks: mode.hooks}, nil
			},
			Collect: core.GenericCollect,
		}); err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.Config{
				Experiment: name,
				BuildTypes: []string{"gcc_native"},
				Benchmarks: []string{"histogram"},
				Input:      workload.SizeTest,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fx.Run(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ThreadScaling reports the modeled speedup of the fft
// kernel across thread counts (the -m sweep behind the lineplot family).
// The m=1 baseline is computed once before the subtests, so -bench
// filters that select a single thread count still report a real speedup
// instead of a bogus 0.
func BenchmarkAblation_ThreadScaling(b *testing.B) {
	gcc := toolchain.GCC()
	w := mustLookup(b)
	artifact, err := gcc.Compile(toolchain.SourceUnit{
		Benchmark: w, CFLAGS: []string{"-O2"}, BuildType: "gcc_native",
	})
	if err != nil {
		b.Fatal(err)
	}
	in := w.DefaultInput(workload.SizeSmall)
	baseSample, err := artifact.ExecuteUncached(in, 1)
	if err != nil {
		b.Fatal(err)
	}
	base := baseSample.Cycles
	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		b.Run(fmt.Sprintf("m=%d", threads), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				s, err := artifact.Execute(in, threads)
				if err != nil {
					b.Fatal(err)
				}
				cycles = s.Cycles
			}
			b.ReportMetric(cycles, "modeled-cycles")
			b.ReportMetric(base/cycles, "speedup")
		})
	}
}

// BenchmarkAblation_MemoizedReps quantifies the memoized execution
// engine: a repetition-heavy splash cell (-r 32) with the memo on versus
// -no-memo. With memoization, 31 of the 32 repetitions per thread count
// are O(1) model evaluations instead of kernel executions, so the run
// must finish at least 5x faster while collecting a byte-identical CSV
// (modeled time makes wall-derived metrics machine-independent).
func BenchmarkAblation_MemoizedReps(b *testing.B) {
	fx := newFexB(b, "gcc-6.1", "splash_inputs")
	cfg := core.Config{
		Experiment: "splash",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"fft"},
		Reps:       32,
		Input:      workload.SizeSmall,
		ModelTime:  true,
	}
	var speedup float64
	var memoCSV, noMemoCSV string
	for i := 0; i < b.N; i++ {
		cfg.NoMemo = false
		start := time.Now()
		memoReport, err := fx.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		memoized := time.Since(start)

		cfg.NoMemo = true
		start = time.Now()
		noMemoReport, err := fx.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		uncached := time.Since(start)

		speedup = uncached.Seconds() / memoized.Seconds()
		memoCSV = memoReport.Table.CSVString()
		noMemoCSV = noMemoReport.Table.CSVString()
	}
	if memoCSV != noMemoCSV {
		b.Fatalf("collected CSV differs between memoized and -no-memo runs:\n--- memo ---\n%s\n--- no-memo ---\n%s",
			memoCSV, noMemoCSV)
	}
	if speedup < 5 {
		b.Fatalf("memoized -r 32 speedup %.2fx below the 5x floor", speedup)
	}
	printTable("Memoized execution engine (-r 32, splash/fft)",
		fmt.Sprintf("no-memo=32 kernel runs  memo=1 kernel run + 31 model evals  speedup=%.1fx\n", speedup))
	b.ReportMetric(speedup, "memo-speedup")
}

// BenchmarkAblation_StoreBulkResolve quantifies the plan-ahead store path
// behind -resume: resolving a 1000-cell warm resume through one BulkGet
// versus 1000 per-cell Get probes, measured in vfs operations — the unit
// a real filesystem bills for. The store is compacted first, as a
// long-lived store would be, so the bulk path syncs the index once and
// reads one pack file per shard instead of probing per cell; batching
// must use strictly fewer operations.
func BenchmarkAblation_StoreBulkResolve(b *testing.B) {
	const cells = 1000
	fsys := vfs.New()
	s := store.New(fsys, "/fex/store")
	fps := make([]store.Fingerprint, cells)
	for i := range fps {
		fps[i] = store.Fingerprint{
			Experiment: "ablation",
			Suite:      "splash",
			Benchmark:  fmt.Sprintf("bench%04d", i),
			BuildType:  "gcc_native",
			Threads:    []int{1},
			Reps:       "2",
		}
		if err := s.Put(fps[i], []byte(fmt.Sprintf("RUN|cell=%d\n", i))); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := s.Compact(nil); err != nil {
		b.Fatal(err)
	}
	var perCellOps, bulkOps float64
	for i := 0; i < b.N; i++ {
		cold := store.New(fsys, "/fex/store")
		before := fsys.Ops()
		for _, fp := range fps {
			if _, present, err := cold.Get(fp); err != nil || !present {
				b.Fatalf("per-cell probe for %s: present=%t err=%v", fp.Benchmark, present, err)
			}
		}
		perCellOps = float64(fsys.Ops() - before)

		cold = store.New(fsys, "/fex/store")
		before = fsys.Ops()
		results, err := cold.BulkGet(fps)
		if err != nil {
			b.Fatal(err)
		}
		bulkOps = float64(fsys.Ops() - before)
		for j, r := range results {
			if !r.Present || r.Err != nil {
				b.Fatalf("bulk result %d: present=%t err=%v", j, r.Present, r.Err)
			}
		}
	}
	if bulkOps >= perCellOps {
		b.Fatalf("bulk resolve used %.0f vfs ops, per-cell probing %.0f — batching must win", bulkOps, perCellOps)
	}
	printTable("Result-store plan-ahead (1000-cell warm resume)",
		fmt.Sprintf("per-cell=%.0f vfs ops  bulk=%.0f vfs ops  ratio=%.1fx\n", perCellOps, bulkOps, perCellOps/bulkOps))
	b.ReportMetric(perCellOps, "percell-vfsops")
	b.ReportMetric(bulkOps, "bulk-vfsops")
	b.ReportMetric(perCellOps/bulkOps, "vfsop-ratio")
}

// BenchmarkAblation_ParallelScaling demonstrates the -jobs experiment
// scheduler: a 4-benchmark suite whose per-run action models one
// fixed-length measurement period. Jobs: 4 must cut wall-clock time at
// least 2× versus the paper-faithful serial loop while collecting a
// byte-identical CSV (the scheduler's determinism contract).
func BenchmarkAblation_ParallelScaling(b *testing.B) {
	const measurementPeriod = 20 * time.Millisecond
	fx := newFexB(b)
	hooks := core.Hooks{
		// No real builds: the cells' cost is purely the measurement period,
		// so the timing isolates scheduling behaviour.
		PerBenchmarkAction: func(rc *core.RunContext, buildType string, w workload.Workload) error {
			return nil
		},
		PerRunAction: func(rc *core.RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
			time.Sleep(measurementPeriod)
			return measure.FromMap(map[string]float64{"cycles": float64(len(w.Name())*1000 + threads)}), nil
		},
	}
	if err := fx.RegisterExperiment(&core.Experiment{
		Name: "parallel_scaling",
		Kind: core.KindPerformance,
		NewRunner: func(fx *core.Fex) (core.Runner, error) {
			return &core.BenchRunner{Suite: "splash", Hooks: hooks}, nil
		},
		Collect: core.GenericCollect,
	}); err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Experiment: "parallel_scaling",
		BuildTypes: []string{"gcc_native"},
		Benchmarks: []string{"fft", "lu", "radix", "ocean"},
		Input:      workload.SizeTest,
	}
	var speedup float64
	var serialCSV, parallelCSV string
	for i := 0; i < b.N; i++ {
		cfg.Jobs = 1
		start := time.Now()
		serialReport, err := fx.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		serial := time.Since(start)

		cfg.Jobs = 4
		start = time.Now()
		parallelReport, err := fx.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		parallel := time.Since(start)

		speedup = serial.Seconds() / parallel.Seconds()
		serialCSV = serialReport.Table.CSVString()
		parallelCSV = parallelReport.Table.CSVString()
	}
	if serialCSV != parallelCSV {
		b.Fatalf("collected CSV differs between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s",
			serialCSV, parallelCSV)
	}
	if speedup < 2 {
		b.Fatalf("jobs=4 speedup %.2fx below the 2x floor on a 4-benchmark suite", speedup)
	}
	printTable("Parallel scheduler scaling (4 benchmarks, jobs=4)",
		fmt.Sprintf("serial=4x%v  parallel~1x%v  speedup=%.2fx\n",
			measurementPeriod, measurementPeriod, speedup))
	b.ReportMetric(speedup, "jobs4-speedup")
}

// BenchmarkModeledRepetition measures the steady-state measurement hot
// path — memoized execution, pooled metric collection, log-record render
// — and reports its allocation count, which the zero-allocation pipeline
// pins at 0 allocs/op.
func BenchmarkModeledRepetition(b *testing.B) {
	gcc := toolchain.GCC()
	w := mustLookup(b)
	artifact, err := gcc.Compile(toolchain.SourceUnit{
		Benchmark: w, CFLAGS: []string{"-O2"}, BuildType: "gcc_native",
	})
	if err != nil {
		b.Fatal(err)
	}
	in := w.DefaultInput(workload.SizeTest)
	lw := runlog.NewWriter(io.Discard)
	tool := measure.PerfStat{}
	oneRep := func(rep int) {
		s, err := artifact.Execute(in, 1)
		if err != nil {
			b.Fatal(err)
		}
		mv := measure.AcquireMetricVector()
		tool.Collect(s, mv)
		mv.Set("wall_ns", float64(s.WallTime.Nanoseconds()))
		lw.WriteMeasurement(runlog.Measurement{
			Suite: w.Suite(), Benchmark: w.Name(), BuildType: "gcc_native",
			Threads: 1, Rep: rep, Values: mv,
		})
		mv.Release()
	}
	oneRep(0) // warm the memo, the pool, and the writer's buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oneRep(i)
	}
}

// BenchmarkAblation_RepetitionEstimate exercises the Kalibera–Jones-style
// repetition estimator over a realistic pilot sample (the statistics the
// paper lists as future work).
func BenchmarkAblation_RepetitionEstimate(b *testing.B) {
	pilot := []float64{100.2, 99.1, 101.7, 100.9, 98.8, 100.4, 99.7, 101.1}
	var n int
	for i := 0; i < b.N; i++ {
		var err error
		n, err = stats.RequiredRepetitions(pilot, 0.95, 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "required-reps")
}

// BenchmarkAblation_PlanAhead quantifies the run planner (plan.go) on the
// three behaviours it adds over per-cell decisions:
//
//	(a) in-run dedup — a duplicated-sweep config (the same benchmark
//	    listed multiple times in -b) measures each distinct cell once;
//	    kernel executions (measured repetitions) saved versus the
//	    -no-dedup baseline, with byte-identical collected CSVs;
//	(b) build/measurement pipelining on a half-warm two-config session
//	    (the "fex diff" shape: config A cold, config B resumed with one
//	    extra build type) — the warm type's build is skipped and the
//	    cold type's cells start the moment its own build finishes, so
//	    time-to-first-measurement stays ~one build period instead of
//	    all-builds;
//	(c) a 100%-warm resume performs zero buildsys.Build calls.
func BenchmarkAblation_PlanAhead(b *testing.B) {
	const buildDelay = 40 * time.Millisecond
	var dedupExecs, rawExecs float64
	var dedupCSV, rawCSV string
	var ttfm time.Duration
	warmBuilds := -1

	for i := 0; i < b.N; i++ {
		// (a) Dedup on a duplicated sweep: 5 positions per type, 2
		// distinct; threads {1,2} × 4 reps.
		var execs atomic.Int64
		fx := newFexB(b)
		hooks := core.Hooks{
			PerBenchmarkAction: func(rc *core.RunContext, buildType string, w workload.Workload) error {
				return nil
			},
			PerRunAction: func(rc *core.RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
				execs.Add(1) // each call stands for one kernel execution
				return measure.FromMap(map[string]float64{"cycles": float64(len(w.Name())*1000 + threads*10 + rep)}), nil
			},
		}
		if err := fx.RegisterExperiment(&core.Experiment{
			Name: "plan_dedup",
			Kind: core.KindPerformance,
			NewRunner: func(fx *core.Fex) (core.Runner, error) {
				return &core.BenchRunner{Suite: "splash", Hooks: hooks}, nil
			},
			Collect: core.GenericCollect,
		}); err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{
			Experiment: "plan_dedup",
			BuildTypes: []string{"gcc_native", "clang_native"},
			Benchmarks: []string{"fft", "lu", "fft", "lu", "fft"},
			Threads:    []int{1, 2},
			Reps:       4,
			Input:      workload.SizeTest,
			ModelTime:  true,
		}
		report, err := fx.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		dedupExecs = float64(execs.Load())
		dedupCSV = report.Table.CSVString()

		execs.Store(0)
		raw := cfg
		raw.NoDedup = true
		report, err = fx.Run(context.Background(), raw)
		if err != nil {
			b.Fatal(err)
		}
		rawExecs = float64(execs.Load())
		rawCSV = report.Table.CSVString()

		// (b) Half-warm two-config session: config A measures gcc_native
		// cold; config B resumes with clang_native added. The planner
		// skips the all-warm gcc build, so the first measurement lands
		// after ~one modeled build period, not two.
		var start time.Time
		var firstNS atomic.Int64
		sessionHooks := core.Hooks{
			PerTypeAction: func(rc *core.RunContext, buildType string) error {
				time.Sleep(buildDelay) // models one build
				return nil
			},
			PerBenchmarkAction: func(rc *core.RunContext, buildType string, w workload.Workload) error {
				return nil
			},
			PerRunAction: func(rc *core.RunContext, buildType string, w workload.Workload, threads, rep int) (*measure.MetricVector, error) {
				firstNS.CompareAndSwap(0, int64(time.Since(start)))
				return measure.FromMap(map[string]float64{"cycles": float64(threads*10 + rep)}), nil
			},
		}
		sfx := newFexB(b)
		if err := sfx.RegisterExperiment(&core.Experiment{
			Name: "plan_diff",
			Kind: core.KindPerformance,
			NewRunner: func(fx *core.Fex) (core.Runner, error) {
				return &core.BenchRunner{Suite: "splash", Hooks: sessionHooks}, nil
			},
			Collect: core.GenericCollect,
		}); err != nil {
			b.Fatal(err)
		}
		cfgA := core.Config{
			Experiment: "plan_diff",
			BuildTypes: []string{"gcc_native"},
			Benchmarks: []string{"fft", "lu"},
			Reps:       2,
			Input:      workload.SizeTest,
			ModelTime:  true,
		}
		start = time.Now()
		if _, err := sfx.Run(context.Background(), cfgA); err != nil {
			b.Fatal(err)
		}
		cfgB := cfgA
		cfgB.BuildTypes = []string{"gcc_native", "clang_native"}
		cfgB.Resume = true
		cfgB.Jobs = 2
		firstNS.Store(0)
		start = time.Now()
		if _, err := sfx.Run(context.Background(), cfgB); err != nil {
			b.Fatal(err)
		}
		ttfm = time.Duration(firstNS.Load())

		// (c) Fully-warm resume on a real experiment: zero Build calls.
		wfx := newFexB(b, "gcc-6.1", "clang-3.8.0")
		wcfg := core.Config{
			Experiment: "splash",
			BuildTypes: []string{"gcc_native", "clang_native"},
			Benchmarks: []string{"fft", "lu"},
			Input:      workload.SizeTest,
			ModelTime:  true,
		}
		if _, err := wfx.Run(context.Background(), wcfg); err != nil {
			b.Fatal(err)
		}
		before := wfx.BuildSystem().Builds()
		wcfg.Resume = true
		if _, err := wfx.Run(context.Background(), wcfg); err != nil {
			b.Fatal(err)
		}
		warmBuilds = wfx.BuildSystem().Builds() - before
	}

	if dedupCSV != rawCSV {
		b.Fatalf("deduped CSV differs from -no-dedup baseline:\n--- no-dedup ---\n%s\n--- deduped ---\n%s", rawCSV, dedupCSV)
	}
	if dedupExecs >= rawExecs {
		b.Fatalf("dedup saved no kernel executions: %.0f vs %.0f undeduped", dedupExecs, rawExecs)
	}
	// Old all-builds-first behaviour puts the first measurement after both
	// build periods (~2×buildDelay); the pipelined plan with the warm type
	// skipped lands it after ~1×. 1.75× splits the two regimes with slack.
	if limit := time.Duration(1.75 * float64(buildDelay)); ttfm >= limit {
		b.Fatalf("time-to-first-measurement %v on the half-warm session; want < %v (warm build skipped, builds pipelined)", ttfm, limit)
	}
	if warmBuilds != 0 {
		b.Fatalf("fully-warm resume performed %d builds, want 0", warmBuilds)
	}
	printTable("Plan-ahead execution (dedup, build skipping, pipelining)",
		fmt.Sprintf("dedup=%.0f execs  no-dedup=%.0f execs  saved=%.1fx\nhalf-warm ttfm=%v (build=%v)  warm-resume builds=%d\n",
			dedupExecs, rawExecs, rawExecs/dedupExecs, ttfm.Round(time.Millisecond), buildDelay, warmBuilds))
	b.ReportMetric(dedupExecs, "dedup-execs")
	b.ReportMetric(rawExecs, "nodedup-execs")
	b.ReportMetric(rawExecs/dedupExecs, "exec-savings")
	b.ReportMetric(float64(ttfm.Milliseconds()), "halfwarm-ttfm-ms")
	b.ReportMetric(float64(warmBuilds), "warmresume-builds")
}

// BenchmarkRIPEMatrix measures raw testbed evaluation speed (850 attack
// forms per iteration).
func BenchmarkRIPEMatrix(b *testing.B) {
	prof := toolchain.GCC()
	artifact, err := prof.Compile(toolchain.SourceUnit{
		Benchmark: mustLookup(b), CFLAGS: []string{"-O2"}, BuildType: "gcc_native",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := security.RunTestbed("gcc_native", artifact.Security)
		if res.Total() != 850 {
			b.Fatal("matrix size changed")
		}
	}
}

// mustLookup returns the fft workload via a fresh registry.
func mustLookup(b *testing.B) workload.Workload {
	b.Helper()
	fx, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	w, err := fx.Registry().Lookup("splash", "fft")
	if err != nil {
		b.Fatal(err)
	}
	return w
}
