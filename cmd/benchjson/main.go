// Command benchjson converts `go test -bench` output read from stdin
// into a JSON benchmark trajectory — the format the repository commits as
// BENCH_<n>.json so performance numbers travel with the code that
// produced them.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkAblation' . | go run ./cmd/benchjson -out BENCH_4.json
//
// Each "BenchmarkX  N  <value> <unit> ..." line becomes one entry with
// its iteration count and metric map; context lines (goos, goarch, cpu)
// are captured as metadata. Input ordering is preserved.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Trajectory is the committed document.
type Trajectory struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Package    string  `json:"pkg,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	traj, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes go test -bench output line by line.
func parse(sc *bufio.Scanner) (*Trajectory, error) {
	traj := &Trajectory{Benchmarks: []Entry{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			traj.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			traj.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			traj.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			traj.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			e, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				traj.Benchmarks = append(traj.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(traj.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return traj, nil
}

// parseBenchLine splits one result line: name, iterations, then
// alternating value/unit pairs. Lines like "BenchmarkX" without fields
// (a benchmark that only printed output) are skipped.
func parseBenchLine(line string) (Entry, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Entry{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false, nil // e.g. "BenchmarkX ... FAIL" summary noise
	}
	e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Entry{}, false, fmt.Errorf("odd metric fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Entry{}, false, fmt.Errorf("bad metric value in %q: %w", line, err)
		}
		e.Metrics[rest[i+1]] = v
	}
	return e, true, nil
}
