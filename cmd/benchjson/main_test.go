package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fex
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAblation_ThreadScaling/m=1         	       1	    354743 ns/op	    994826 modeled-cycles	         1.000 speedup
BenchmarkAblation_MemoizedReps              	       1	  12329417 ns/op	        12.85 memo-speedup
PASS
ok  	fex	0.021s
`

func TestParseSample(t *testing.T) {
	traj, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if traj.Goos != "linux" || traj.Goarch != "amd64" || traj.Package != "fex" {
		t.Errorf("metadata %+v", traj)
	}
	if len(traj.Benchmarks) != 2 {
		t.Fatalf("%d benchmarks, want 2", len(traj.Benchmarks))
	}
	m1 := traj.Benchmarks[0]
	if m1.Name != "BenchmarkAblation_ThreadScaling/m=1" || m1.Iterations != 1 {
		t.Errorf("entry %+v", m1)
	}
	if m1.Metrics["speedup"] != 1.0 || m1.Metrics["modeled-cycles"] != 994826 {
		t.Errorf("metrics %+v", m1.Metrics)
	}
	memo := traj.Benchmarks[1]
	if memo.Metrics["memo-speedup"] != 12.85 {
		t.Errorf("memo metrics %+v", memo.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\n"))); err == nil {
		t.Error("expected error for input without benchmark lines")
	}
}

func TestParseSkipsMalformedIterations(t *testing.T) {
	in := sample + "BenchmarkBroken abc\n"
	traj, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Benchmarks) != 2 {
		t.Errorf("malformed line not skipped: %d entries", len(traj.Benchmarks))
	}
}
