package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseArgsRunFlags(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "splash",
		"-t", "gcc_native", "clang_native",
		"-b", "fft", "lu",
		"-m", "1", "2", "4",
		"-r", "10",
		"-jobs", "4",
		"-i", "test",
		"-d", "-v", "--no-build",
		"-o", "/tmp/out",
		"--state", "/tmp/state",
	})
	if err != nil {
		t.Fatal(err)
	}
	if args.action != "run" || args.name != "splash" {
		t.Errorf("action/name: %q/%q", args.action, args.name)
	}
	if len(args.types) != 2 || args.types[1] != "clang_native" {
		t.Errorf("types %v", args.types)
	}
	if len(args.benches) != 2 || len(args.threads) != 3 || args.threads[2] != 4 {
		t.Errorf("benches %v threads %v", args.benches, args.threads)
	}
	if args.reps != 10 || args.input != "test" {
		t.Errorf("reps/input: %d/%q", args.reps, args.input)
	}
	if args.jobs != 4 {
		t.Errorf("jobs: %d, want 4", args.jobs)
	}
	if !args.debug || !args.verbose || !args.noBuild {
		t.Error("boolean flags not parsed")
	}
	if args.outDir != "/tmp/out" || args.stateFile != "/tmp/state" {
		t.Errorf("paths: %q %q", args.outDir, args.stateFile)
	}
}

func TestParseArgsErrors(t *testing.T) {
	cases := [][]string{
		{},                       // no action
		{"run", "-n"},            // -n without value
		{"run", "-t"},            // -t without values
		{"run", "-r", "notanum"}, // bad -r
		{"run", "-m", "x"},       // bad -m
		{"run", "-jobs"},         // -jobs without value
		{"run", "-jobs", "zero"}, // bad -jobs
		{"run", "-jobs", "0"},    // -jobs below 1
		{"run", "--bogus"},       // unknown flag
		{"run", "-o"},            // -o without value
		{"run", "-cpuprofile"},   // -cpuprofile without path
		{"run", "-memprofile"},   // -memprofile without path
	}
	for _, argv := range cases {
		if _, err := parseArgs(argv); err == nil {
			t.Errorf("parseArgs(%v): expected error", argv)
		}
	}
}

func TestParseArgsResumeAndAdaptiveReps(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "micro",
		"-t", "gcc_native",
		"-r", "auto:0.99,0.02",
		"-resume",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !args.adaptive || args.repLevel != 0.99 || args.repRelWidth != 0.02 {
		t.Errorf("adaptive=%t level=%v relwidth=%v", args.adaptive, args.repLevel, args.repRelWidth)
	}
	if !args.resume {
		t.Error("-resume not parsed")
	}

	args, err = parseArgs([]string{"run", "-n", "micro", "-r", "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if !args.adaptive || args.repLevel != 0 || args.repRelWidth != 0 {
		t.Errorf("bare auto: adaptive=%t level=%v relwidth=%v (params must default)", args.adaptive, args.repLevel, args.repRelWidth)
	}

	for _, argv := range [][]string{
		{"run", "-r", "auto:0.99"},     // missing relwidth
		{"run", "-r", "auto:x,0.05"},   // bad level
		{"run", "-r", "auto:0.95,y"},   // bad relwidth
		{"run", "-r", "auto:0.95,0,1"}, // too many params
	} {
		if _, err := parseArgs(argv); err == nil {
			t.Errorf("parseArgs(%v): expected error", argv)
		}
	}
}

func TestParseArgsMemoAndProfileFlags(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "splash",
		"-no-memo",
		"-cpuprofile", "/tmp/cpu.pprof",
		"-memprofile", "/tmp/mem.pprof",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !args.noMemo {
		t.Error("-no-memo not parsed")
	}
	if args.cpuProfile != "/tmp/cpu.pprof" || args.memProfile != "/tmp/mem.pprof" {
		t.Errorf("profiles: %q %q", args.cpuProfile, args.memProfile)
	}
	// The GNU-style spelling is accepted too, matching --no-build.
	args, err = parseArgs([]string{"run", "-n", "splash", "--no-memo"})
	if err != nil {
		t.Fatal(err)
	}
	if !args.noMemo {
		t.Error("--no-memo not parsed")
	}
}

// TestCLIProfileRun drives a real run with both profile flags and checks
// the pprof files materialize on the host.
func TestCLIProfileRun(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{
		"run", "-n", "micro", "-t", "gcc_native", "-b", "array_read",
		"-i", "test", "-r", "4",
		"-cpuprofile", cpu, "-memprofile", mem,
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestCLIResumeRoundtripWithState is the CLI half of the resumable-run
// story: the result store rides in the --state file, so a second
// invocation with -resume replays the first invocation's cells and exports
// a byte-identical CSV and log.
func TestCLIResumeRoundtripWithState(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")
	coldDir, warmDir := filepath.Join(dir, "cold"), filepath.Join(dir, "warm")
	base := []string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-b", "array_read", "branch_heavy",
		"-i", "test", "-r", "2",
		"--modeled-time",
		"--state", state,
	}
	if err := run(append(append([]string{}, base...), "-o", coldDir)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-resume", "-o", warmDir)); err != nil {
		t.Fatal(err)
	}
	// The CLI stamps real invocation times into the log header; mask that
	// one field — everything else, including every measurement byte, must
	// match (the in-process determinism suite proves full byte identity
	// under an injected clock).
	maskStarted := regexp.MustCompile(`started=[^|\n]*`)
	for _, name := range []string{"micro.csv", "micro.log"} {
		cold, err := os.ReadFile(filepath.Join(coldDir, name))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := os.ReadFile(filepath.Join(warmDir, name))
		if err != nil {
			t.Fatal(err)
		}
		c := maskStarted.ReplaceAllString(string(cold), "started=T")
		w := maskStarted.ReplaceAllString(string(warm), "started=T")
		if c != w {
			t.Errorf("%s differs between cold and warm -resume run:\n--- cold ---\n%s\n--- warm ---\n%s", name, cold, warm)
		}
	}

	// fex clean empties the store in the state file; the run after it
	// still works (measures cold again).
	if err := run([]string{"clean", "--state", state}); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-resume")); err != nil {
		t.Fatalf("resume after clean: %v", err)
	}
}

// TestCLIFailedRunStillSavesState pins the partial-run durability
// contract at the CLI layer: even when a run fails, the container state —
// and with it every result-store cell that completed before the failure —
// is persisted, so a retry with -resume measures only what is missing.
func TestCLIFailedRunStillSavesState(t *testing.T) {
	state := filepath.Join(t.TempDir(), "fex.state")
	err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native",
		"-b", "no_such_benchmark",
		"--state", state,
	})
	if err == nil {
		t.Fatal("run with unknown benchmark succeeded")
	}
	if _, statErr := os.Stat(state); statErr != nil {
		t.Errorf("state file not saved after failed run: %v", statErr)
	}
}

func TestCLIRunAdaptiveReps(t *testing.T) {
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native",
		"-b", "array_read",
		"-i", "test",
		"-r", "auto",
		"--modeled-time",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIListAction(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIUnknownAction(t *testing.T) {
	err := run([]string{"frobnicate"})
	if err == nil || !strings.Contains(err.Error(), "unknown action") {
		t.Errorf("got %v", err)
	}
}

func TestCLIInstallRunRoundtripWithState(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")

	// Invocation 1: install RIPE sources; state persisted.
	if err := run([]string{"install", "-n", "ripe", "--state", state}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state file missing: %v", err)
	}

	// Invocation 2: a fresh process-equivalent run picks the install up
	// from the state file and executes the Table II experiment.
	if err := run([]string{
		"run", "-n", "ripe",
		"-t", "gcc_native", "clang_native",
		"--state", state,
		"-o", dir,
	}); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "ripe.csv"))
	if err != nil {
		t.Fatalf("exported csv missing: %v", err)
	}
	if !strings.Contains(string(csv), "gcc_native,64,786,850") {
		t.Errorf("Table II row missing from exported csv:\n%s", csv)
	}

	// Invocation 3: collect again from stored state.
	if err := run([]string{"collect", "-n", "ripe", "--state", state}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIRunMicroAndPlot(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-b", "array_read",
		"-i", "test",
		"--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"plot", "-n", "micro", "-t", "perf", "-o", dir, "--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "micro_perf.svg"))
	if err != nil {
		t.Fatalf("plot file missing: %v", err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("plot is not SVG")
	}
}

func TestCLIAnalyze(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-b", "array_read",
		"-i", "test", "-r", "3",
		"--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"analyze", "-n", "micro", "-t", "gcc_native", "gcc_asan", "--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	// Wrong arity is rejected.
	if err := run([]string{"analyze", "-n", "micro", "-t", "gcc_native", "--state", state}); err == nil {
		t.Error("expected error for single -t value")
	}
}

func TestCLIPlotWithoutRunFails(t *testing.T) {
	if err := run([]string{"plot", "-n", "splash", "-t", "perf"}); err == nil {
		t.Error("expected error plotting without collected results")
	}
}

func TestCLIRunRequiresName(t *testing.T) {
	for _, action := range []string{"run", "install", "collect", "plot", "analyze"} {
		if err := run([]string{action}); err == nil {
			t.Errorf("%s without -n accepted", action)
		}
	}
}

func TestParseArgsClusterFlags(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "splash",
		"-t", "gcc_native",
		"-hosts", "w1, w2,w3",
		"--modeled-time",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(args.hosts) != 3 || args.hosts[0] != "w1" || args.hosts[1] != "w2" || args.hosts[2] != "w3" {
		t.Errorf("hosts %v", args.hosts)
	}
	if !args.modelTime {
		t.Error("--modeled-time not parsed")
	}

	for _, argv := range [][]string{
		{"run", "-hosts"},           // missing value
		{"run", "-hosts", "w1,,w2"}, // empty host name
	} {
		if _, err := parseArgs(argv); err == nil {
			t.Errorf("parseArgs(%v): expected error", argv)
		}
	}
}

func TestCLIClusterRunMatchesSerialCSV(t *testing.T) {
	serialDir, clusterDir := t.TempDir(), t.TempDir()
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-i", "test", "-r", "2",
		"--modeled-time",
		"-o", serialDir,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-i", "test", "-r", "2",
		"--modeled-time",
		"-hosts", "w1,w2",
		"-o", clusterDir,
	}); err != nil {
		t.Fatal(err)
	}
	serial, err := os.ReadFile(filepath.Join(serialDir, "micro.csv"))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := os.ReadFile(filepath.Join(clusterDir, "micro.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(serial) != string(cluster) {
		t.Errorf("cluster CSV differs from serial CSV:\n--- serial ---\n%s\n--- cluster ---\n%s", serial, cluster)
	}
	if len(serial) == 0 {
		t.Error("empty CSV")
	}
}
