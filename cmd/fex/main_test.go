package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"fex/internal/clock"
	"fex/internal/diff"
	"fex/internal/remote"
)

func TestParseArgsRunFlags(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "splash",
		"-t", "gcc_native", "clang_native",
		"-b", "fft", "lu",
		"-m", "1", "2", "4",
		"-r", "10",
		"-jobs", "4",
		"-i", "test",
		"-d", "-v", "--no-build",
		"-o", "/tmp/out",
		"--state", "/tmp/state",
	})
	if err != nil {
		t.Fatal(err)
	}
	if args.action != "run" || args.name != "splash" {
		t.Errorf("action/name: %q/%q", args.action, args.name)
	}
	if len(args.types) != 2 || args.types[1] != "clang_native" {
		t.Errorf("types %v", args.types)
	}
	if len(args.benches) != 2 || len(args.threads) != 3 || args.threads[2] != 4 {
		t.Errorf("benches %v threads %v", args.benches, args.threads)
	}
	if args.reps != 10 || args.input != "test" {
		t.Errorf("reps/input: %d/%q", args.reps, args.input)
	}
	if args.jobs != 4 {
		t.Errorf("jobs: %d, want 4", args.jobs)
	}
	if !args.debug || !args.verbose || !args.noBuild {
		t.Error("boolean flags not parsed")
	}
	if args.outDir != "/tmp/out" || args.stateFile != "/tmp/state" {
		t.Errorf("paths: %q %q", args.outDir, args.stateFile)
	}
}

func TestParseArgsErrors(t *testing.T) {
	cases := [][]string{
		{},                       // no action
		{"run", "-n"},            // -n without value
		{"run", "-t"},            // -t without values
		{"run", "-r", "notanum"}, // bad -r
		{"run", "-m", "x"},       // bad -m
		{"run", "-jobs"},         // -jobs without value
		{"run", "-jobs", "zero"}, // bad -jobs
		{"run", "-jobs", "0"},    // -jobs below 1
		{"run", "--bogus"},       // unknown flag
		{"run", "-o"},            // -o without value
		{"run", "-cpuprofile"},   // -cpuprofile without path
		{"run", "-memprofile"},   // -memprofile without path
	}
	for _, argv := range cases {
		if _, err := parseArgs(argv); err == nil {
			t.Errorf("parseArgs(%v): expected error", argv)
		}
	}
}

func TestParseArgsResumeAndAdaptiveReps(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "micro",
		"-t", "gcc_native",
		"-r", "auto:0.99,0.02",
		"-resume",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !args.adaptive || args.repLevel != 0.99 || args.repRelWidth != 0.02 {
		t.Errorf("adaptive=%t level=%v relwidth=%v", args.adaptive, args.repLevel, args.repRelWidth)
	}
	if !args.resume {
		t.Error("-resume not parsed")
	}

	args, err = parseArgs([]string{"run", "-n", "micro", "-r", "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if !args.adaptive || args.repLevel != 0 || args.repRelWidth != 0 {
		t.Errorf("bare auto: adaptive=%t level=%v relwidth=%v (params must default)", args.adaptive, args.repLevel, args.repRelWidth)
	}

	for _, argv := range [][]string{
		{"run", "-r", "auto:0.99"},     // missing relwidth
		{"run", "-r", "auto:x,0.05"},   // bad level
		{"run", "-r", "auto:0.95,y"},   // bad relwidth
		{"run", "-r", "auto:0.95,0,1"}, // too many params
	} {
		if _, err := parseArgs(argv); err == nil {
			t.Errorf("parseArgs(%v): expected error", argv)
		}
	}
}

func TestParseArgsMemoAndProfileFlags(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "splash",
		"-no-memo",
		"-cpuprofile", "/tmp/cpu.pprof",
		"-memprofile", "/tmp/mem.pprof",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !args.noMemo {
		t.Error("-no-memo not parsed")
	}
	if args.cpuProfile != "/tmp/cpu.pprof" || args.memProfile != "/tmp/mem.pprof" {
		t.Errorf("profiles: %q %q", args.cpuProfile, args.memProfile)
	}
	// The GNU-style spelling is accepted too, matching --no-build.
	args, err = parseArgs([]string{"run", "-n", "splash", "--no-memo"})
	if err != nil {
		t.Fatal(err)
	}
	if !args.noMemo {
		t.Error("--no-memo not parsed")
	}
}

// TestCLIProfileRun drives a real run with both profile flags and checks
// the pprof files materialize on the host.
func TestCLIProfileRun(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{
		"run", "-n", "micro", "-t", "gcc_native", "-b", "array_read",
		"-i", "test", "-r", "4",
		"-cpuprofile", cpu, "-memprofile", mem,
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestCLIResumeRoundtripWithState is the CLI half of the resumable-run
// story: the result store rides in the --state file, so a second
// invocation with -resume replays the first invocation's cells and exports
// a byte-identical CSV and log.
func TestCLIResumeRoundtripWithState(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")
	coldDir, warmDir := filepath.Join(dir, "cold"), filepath.Join(dir, "warm")
	base := []string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-b", "array_read", "branch_heavy",
		"-i", "test", "-r", "2",
		"--modeled-time",
		"--state", state,
	}
	if err := run(append(append([]string{}, base...), "-o", coldDir)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-resume", "-o", warmDir)); err != nil {
		t.Fatal(err)
	}
	// The CLI stamps real invocation times into the log header; mask that
	// one field — everything else, including every measurement byte, must
	// match (the in-process determinism suite proves full byte identity
	// under an injected clock).
	maskStarted := regexp.MustCompile(`started=[^|\n]*`)
	for _, name := range []string{"micro.csv", "micro.log"} {
		cold, err := os.ReadFile(filepath.Join(coldDir, name))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := os.ReadFile(filepath.Join(warmDir, name))
		if err != nil {
			t.Fatal(err)
		}
		c := maskStarted.ReplaceAllString(string(cold), "started=T")
		w := maskStarted.ReplaceAllString(string(warm), "started=T")
		if c != w {
			t.Errorf("%s differs between cold and warm -resume run:\n--- cold ---\n%s\n--- warm ---\n%s", name, cold, warm)
		}
	}

	// fex clean empties the store in the state file; the run after it
	// still works (measures cold again).
	if err := run([]string{"clean", "--state", state}); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-resume")); err != nil {
		t.Fatalf("resume after clean: %v", err)
	}
}

// TestCLICompactRoundtripWithState drives `fex compact` through the CLI:
// a compacted store (records repacked into per-shard pack files, written
// back into the --state file) must replay exactly like the loose store —
// a -resume run after compaction exports byte-identical results.
func TestCLICompactRoundtripWithState(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")
	coldDir, warmDir := filepath.Join(dir, "cold"), filepath.Join(dir, "warm")
	base := []string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-b", "array_read", "branch_heavy",
		"-i", "test", "-r", "2",
		"--modeled-time",
		"--state", state,
	}
	if err := run(append(append([]string{}, base...), "-o", coldDir)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compact", "--state", state}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := run(append(append([]string{}, base...), "-resume", "-o", warmDir)); err != nil {
		t.Fatalf("resume after compact: %v", err)
	}
	maskStarted := regexp.MustCompile(`started=[^|\n]*`)
	for _, name := range []string{"micro.csv", "micro.log"} {
		cold, err := os.ReadFile(filepath.Join(coldDir, name))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := os.ReadFile(filepath.Join(warmDir, name))
		if err != nil {
			t.Fatal(err)
		}
		c := maskStarted.ReplaceAllString(string(cold), "started=T")
		w := maskStarted.ReplaceAllString(string(warm), "started=T")
		if c != w {
			t.Errorf("%s differs between cold run and -resume after compact:\n--- cold ---\n%s\n--- warm ---\n%s", name, cold, warm)
		}
	}
	// Compacting an already-compacted (or empty) store is harmless.
	if err := run([]string{"compact", "--state", state}); err != nil {
		t.Fatalf("second compact: %v", err)
	}
}

// TestCLIFailedRunStillSavesState pins the partial-run durability
// contract at the CLI layer: even when a run fails, the container state —
// and with it every result-store cell that completed before the failure —
// is persisted, so a retry with -resume measures only what is missing.
func TestCLIFailedRunStillSavesState(t *testing.T) {
	state := filepath.Join(t.TempDir(), "fex.state")
	err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native",
		"-b", "no_such_benchmark",
		"--state", state,
	})
	if err == nil {
		t.Fatal("run with unknown benchmark succeeded")
	}
	if _, statErr := os.Stat(state); statErr != nil {
		t.Errorf("state file not saved after failed run: %v", statErr)
	}
}

func TestCLIRunAdaptiveReps(t *testing.T) {
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native",
		"-b", "array_read",
		"-i", "test",
		"-r", "auto",
		"--modeled-time",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIListAction(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIUnknownAction(t *testing.T) {
	err := run([]string{"frobnicate"})
	if err == nil || !strings.Contains(err.Error(), "unknown action") {
		t.Errorf("got %v", err)
	}
}

func TestCLIInstallRunRoundtripWithState(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")

	// Invocation 1: install RIPE sources; state persisted.
	if err := run([]string{"install", "-n", "ripe", "--state", state}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state file missing: %v", err)
	}

	// Invocation 2: a fresh process-equivalent run picks the install up
	// from the state file and executes the Table II experiment.
	if err := run([]string{
		"run", "-n", "ripe",
		"-t", "gcc_native", "clang_native",
		"--state", state,
		"-o", dir,
	}); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "ripe.csv"))
	if err != nil {
		t.Fatalf("exported csv missing: %v", err)
	}
	if !strings.Contains(string(csv), "gcc_native,64,786,850") {
		t.Errorf("Table II row missing from exported csv:\n%s", csv)
	}

	// Invocation 3: collect again from stored state.
	if err := run([]string{"collect", "-n", "ripe", "--state", state}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIRunMicroAndPlot(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-b", "array_read",
		"-i", "test",
		"--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"plot", "-n", "micro", "-t", "perf", "-o", dir, "--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "micro_perf.svg"))
	if err != nil {
		t.Fatalf("plot file missing: %v", err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("plot is not SVG")
	}
}

func TestCLIAnalyze(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-b", "array_read",
		"-i", "test", "-r", "3",
		"--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"analyze", "-n", "micro", "-t", "gcc_native", "gcc_asan", "--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	// Wrong arity is rejected.
	if err := run([]string{"analyze", "-n", "micro", "-t", "gcc_native", "--state", state}); err == nil {
		t.Error("expected error for single -t value")
	}
}

func TestCLIPlotWithoutRunFails(t *testing.T) {
	if err := run([]string{"plot", "-n", "splash", "-t", "perf"}); err == nil {
		t.Error("expected error plotting without collected results")
	}
}

func TestCLIRunRequiresName(t *testing.T) {
	for _, action := range []string{"run", "install", "collect", "plot", "analyze"} {
		if err := run([]string{action}); err == nil {
			t.Errorf("%s without -n accepted", action)
		}
	}
}

func TestParseArgsClusterFlags(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "splash",
		"-t", "gcc_native",
		"-hosts", "w1, w2,w3",
		"--modeled-time",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(args.hosts) != 3 || args.hosts[0] != "w1" || args.hosts[1] != "w2" || args.hosts[2] != "w3" {
		t.Errorf("hosts %v", args.hosts)
	}
	if !args.modelTime {
		t.Error("--modeled-time not parsed")
	}

	for _, argv := range [][]string{
		{"run", "-hosts"},           // missing value
		{"run", "-hosts", "w1,,w2"}, // empty host name
	} {
		if _, err := parseArgs(argv); err == nil {
			t.Errorf("parseArgs(%v): expected error", argv)
		}
	}
}

func TestParseArgsFaultToleranceFlags(t *testing.T) {
	args, err := parseArgs([]string{
		"run", "-n", "splash",
		"-t", "gcc_native",
		"-hosts", "w1,w2",
		"-hosts-file", "hosts.txt",
		"-host-timeout", "30s",
		"-no-speculate",
		"-degrade", "local",
	})
	if err != nil {
		t.Fatal(err)
	}
	if args.hostsFile != "hosts.txt" {
		t.Errorf("hosts file %q, want hosts.txt", args.hostsFile)
	}
	if args.hostTimeout != 30*time.Second {
		t.Errorf("host timeout %v, want 30s", args.hostTimeout)
	}
	if !args.noSpeculate {
		t.Error("-no-speculate not parsed")
	}
	if args.degrade != "local" {
		t.Errorf("degrade %q, want local", args.degrade)
	}
	if args.noSteal || args.noLoadAware {
		t.Error("-no-steal/-no-load-aware defaulted on")
	}

	args, err = parseArgs([]string{"run", "-n", "splash", "-no-steal", "--no-load-aware"})
	if err != nil {
		t.Fatal(err)
	}
	if !args.noSteal {
		t.Error("-no-steal not parsed")
	}
	if !args.noLoadAware {
		t.Error("--no-load-aware not parsed")
	}

	// -speculate restores the default after -no-speculate (last wins).
	args, err = parseArgs([]string{"run", "-n", "splash", "-no-speculate", "-speculate"})
	if err != nil {
		t.Fatal(err)
	}
	if args.noSpeculate {
		t.Error("-speculate did not reset -no-speculate")
	}

	for _, argv := range [][]string{
		{"run", "-host-timeout"},           // missing value
		{"run", "-host-timeout", "banana"}, // not a duration
		{"run", "-host-timeout", "-5s"},    // negative
		{"run", "-hosts-file"},             // missing value
		{"run", "-degrade"},                // missing value
	} {
		if _, err := parseArgs(argv); err == nil {
			t.Errorf("parseArgs(%v): expected error", argv)
		}
	}
}

func TestReadHostsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hosts.txt")
	if err := os.WriteFile(path, []byte("# workers\nw1\n\n  w2  \n#w3\nw4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	hosts, err := readHostsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 3 || hosts[0] != "w1" || hosts[1] != "w2" || hosts[2] != "w4" {
		t.Errorf("hosts %v, want [w1 w2 w4]", hosts)
	}
	if _, err := readHostsFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing hosts file did not error")
	}
	if got := mergeHosts([]string{"w1", "w2"}, []string{"w2", "w5"}); len(got) != 3 || got[2] != "w5" {
		t.Errorf("mergeHosts = %v, want [w1 w2 w5]", got)
	}
}

// TestPollHostsFileOnVirtualClock pins the poller to the run's clock: it
// must tick on the injected clock.Clock (not a wall-clock time.Ticker),
// so under a virtual clock nothing happens until the clock is advanced
// and each 2s advance triggers exactly one re-read of the hosts file.
func TestPollHostsFileOnVirtualClock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hosts.txt")
	if err := os.WriteFile(path, []byte("w1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vclk := clock.NewVirtual(time.Date(2017, 6, 26, 12, 0, 0, 0, time.UTC))
	cluster := remote.NewCluster()
	stop := pollHostsFileOn(vclk, cluster, path, io.Discard)
	defer stop()

	waitForHost := func(name string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := cluster.Host(name); err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("host %s never joined: cluster has %v", name, cluster.Hosts())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The poller's ticker registers on the virtual clock; until it is
	// advanced, the file is never read.
	vclk.BlockUntil(1)
	if _, err := cluster.Host("w1"); err == nil {
		t.Fatal("host registered before the virtual clock advanced")
	}
	vclk.Advance(2 * time.Second)
	waitForHost("w1")

	// A name appearing in the file mid-run joins on the next tick.
	if err := os.WriteFile(path, []byte("w1\nw2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vclk.BlockUntil(1)
	vclk.Advance(2 * time.Second)
	waitForHost("w2")

	// After stop, further advances tick nobody.
	stop()
	if err := os.WriteFile(path, []byte("w1\nw2\nw3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vclk.Advance(2 * time.Second)
	time.Sleep(10 * time.Millisecond)
	if _, err := cluster.Host("w3"); err == nil {
		t.Error("poller still registering hosts after stop")
	}
}

// TestEnsureHostsWarnsOnce pins the fix for the poller's log spam: a
// host name the cluster rejects used to be warned about on every 2s
// tick; now it is warned exactly once until it recovers.
func TestEnsureHostsWarnsOnce(t *testing.T) {
	cluster := remote.NewCluster()
	var buf bytes.Buffer
	warned := make(map[string]bool)
	for i := 0; i < 5; i++ {
		ensureHosts(cluster, []string{"", "w1"}, warned, &buf)
	}
	if got := strings.Count(buf.String(), `host ""`); got != 1 {
		t.Errorf("rejected host warned %d times over 5 ticks, want 1:\n%s", got, buf.String())
	}
	if _, err := cluster.Host("w1"); err != nil {
		t.Errorf("valid host not registered: %v", err)
	}
	// A warning re-arms once the host registers successfully, so a host
	// that breaks again is reported again.
	warned["w1"] = true
	ensureHosts(cluster, []string{"w1"}, warned, &buf)
	if warned["w1"] {
		t.Error("successful registration did not re-arm the warning")
	}
}

func TestParseArgsDiffGateFlags(t *testing.T) {
	args, err := parseArgs([]string{
		"diff", "/tmp/base", "/tmp/cand",
		"-metric", "cycles",
		"-alpha", "0.01",
		"-o", "/tmp/out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(args.positional) != 2 || args.positional[0] != "/tmp/base" || args.positional[1] != "/tmp/cand" {
		t.Errorf("positional %v", args.positional)
	}
	if args.metric != "cycles" || args.alpha != 0.01 {
		t.Errorf("metric %q alpha %v", args.metric, args.alpha)
	}

	args, err = parseArgs([]string{
		"gate", "-baseline", "/tmp/base", "-max-regression", "5", "--higher-is-better",
	})
	if err != nil {
		t.Fatal(err)
	}
	if args.baseline != "/tmp/base" || args.maxRegress != 5 || !args.higherIsBet {
		t.Errorf("baseline %q maxRegress %v higher %v", args.baseline, args.maxRegress, args.higherIsBet)
	}

	for _, argv := range [][]string{
		{"diff", "-alpha"},                       // missing value
		{"diff", "-alpha", "2"},                  // out of range
		{"diff", "-alpha", "x"},                  // not a number
		{"gate", "-max-regression"},              // missing value
		{"gate", "-max-regression", "-3"},        // negative
		{"gate", "-baseline"},                    // missing value
		{"diff", "-metric"},                      // missing value
		{"diff", "only_one_path"},                // wrong arity (checked in run, parse ok) — see below
		{"gate"},                                 // no -baseline (checked in run) — see below
		{"export"},                               // no -o (checked in run) — see below
		{"diff", "/nonexistent", "/nonexistent"}, /* bad paths */
	} {
		argErr := func() error {
			a, err := parseArgs(argv)
			if err != nil {
				return err
			}
			_ = a
			return run(argv)
		}()
		if argErr == nil {
			t.Errorf("%v: expected error", argv)
		}
	}
}

// TestCLIDiffGateEndToEnd is the end-to-end proof of the cross-run
// analyzer: two runs of the same configuration — one serial, one through
// the -jobs tier — diff to zero significant deltas with byte-identical
// rendered output, `fex gate` passes against the exported baseline, and a
// planted regression makes it exit nonzero (and pass again once the
// threshold tolerates it).
func TestCLIDiffGateEndToEnd(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	dir := t.TempDir()
	serialState := filepath.Join(dir, "serial.state")
	jobsState := filepath.Join(dir, "jobs.state")
	base := []string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-b", "array_read", "branch_heavy",
		"-i", "test", "-r", "2",
		"--modeled-time",
	}
	if err := run(append(append([]string{}, base...), "--state", serialState)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-jobs", "4", "--state", jobsState)); err != nil {
		t.Fatal(err)
	}

	// Export both run sets; modeled time makes the records — and therefore
	// the run-set digests — identical across the serial and -jobs tiers.
	baseDir := filepath.Join(dir, "baseline")
	if err := run([]string{"export", "-o", baseDir, "--state", serialState}); err != nil {
		t.Fatal(err)
	}

	// Diff the baseline against each tier's state file into identically
	// named output dirs: every artifact must be byte-identical, and the
	// JSON must report no significant deltas.
	outputs := make(map[string][][]byte)
	for tier, state := range map[string]string{"serial": serialState, "jobs": jobsState} {
		out := filepath.Join(dir, "out_"+tier)
		// Same candidate label for both tiers so the provenance lines match.
		cand := filepath.Join(dir, "cand_"+tier, "cand.state")
		if err := os.MkdirAll(filepath.Dir(cand), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(state)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cand, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chdir(filepath.Dir(cand)); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"diff", baseDir, "cand.state", "-o", out}); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"fexdiff.csv", "fexdiff.json", "fexdiff.svg"} {
			b, err := os.ReadFile(filepath.Join(out, name))
			if err != nil {
				t.Fatal(err)
			}
			outputs[name] = append(outputs[name], b)
		}
	}
	for name, pair := range outputs {
		if string(pair[0]) != string(pair[1]) {
			t.Errorf("%s differs between the serial and -jobs tiers:\n--- serial ---\n%s\n--- jobs ---\n%s", name, pair[0], pair[1])
		}
	}
	report, err := diff.DecodeReport(outputs["fexdiff.json"][0])
	if err != nil {
		t.Fatalf("exported report does not decode: %v", err)
	}
	if len(report.Deltas) != 4 {
		t.Errorf("deltas %d, want 4 (2 types x 2 benches)", len(report.Deltas))
	}
	if n := len(report.Significant()); n != 0 {
		t.Errorf("same-config diff reported %d significant deltas", n)
	}
	if len(report.BaselineOnly)+len(report.CandidateOnly) != 0 {
		t.Error("same-config diff reported unmatched cells")
	}

	// Gate against the committed-style baseline: passes.
	if err := run([]string{"gate", "-baseline", baseDir, "--state", serialState}); err != nil {
		t.Fatalf("gate on identical runs failed: %v", err)
	}

	// Plant a regression: double every wall_ns sample in a copy of the
	// candidate run set, then gate must exit nonzero...
	slowDir := filepath.Join(dir, "slow")
	plantRegression(t, baseDir, slowDir, 2.0)
	err = run([]string{"gate", "-baseline", baseDir, slowDir})
	if err == nil || !strings.Contains(err.Error(), "gate failed") {
		t.Fatalf("gate on planted regression: %v", err)
	}
	// ...unless the threshold tolerates a 2x slowdown.
	if err := run([]string{"gate", "-baseline", baseDir, slowDir, "-max-regression", "150"}); err != nil {
		t.Errorf("tolerant gate failed: %v", err)
	}
	// The planted slowdown is an IMPROVEMENT when the baseline and
	// candidate swap sides — direction matters.
	if err := run([]string{"gate", "-baseline", slowDir, baseDir}); err != nil {
		t.Errorf("gate treated an improvement as a regression: %v", err)
	}
}

// TestCLIRejectsStrayPositionalArgs pins that bare tokens are only valid
// for diff/gate (run-set paths): a forgotten flag ("run -n micro
// gcc_native" without -t) must error, not silently measure the default
// configuration.
func TestCLIRejectsStrayPositionalArgs(t *testing.T) {
	for _, argv := range [][]string{
		{"run", "-n", "micro", "gcc_native"},
		{"install", "-n", "ripe", "stray"},
		{"export", "stray", "-o", t.TempDir()},
		{"clean", "stray"},
	} {
		err := run(argv)
		if err == nil || !strings.Contains(err.Error(), "unexpected argument") {
			t.Errorf("%v: %v, want unexpected-argument error", argv, err)
		}
	}
}

// TestCLIGateRejectsEmptyCandidate pins that a gate whose --state file is
// missing or holds no cells fails loudly instead of passing vacuously
// (every baseline cell unmatched is only a warning, so a typo'd state
// path would otherwise green-light CI forever). An empty export is
// rejected for the same reason.
func TestCLIGateRejectsEmptyCandidate(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "fex.state")
	baseDir := filepath.Join(dir, "baseline")
	if err := run([]string{
		"run", "-n", "micro", "-t", "gcc_native", "-b", "array_read",
		"-i", "test", "-r", "2", "--modeled-time", "--state", state,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"export", "-o", baseDir, "--state", state}); err != nil {
		t.Fatal(err)
	}
	// Missing state file: the candidate store is empty.
	err := run([]string{"gate", "-baseline", baseDir, "--state", filepath.Join(dir, "nope.state")})
	if err == nil || !strings.Contains(err.Error(), "no cells") {
		t.Errorf("gate with missing state: %v, want no-cells error", err)
	}
	// No --state at all: same.
	if err := run([]string{"gate", "-baseline", baseDir}); err == nil {
		t.Error("gate with no candidate store passed vacuously")
	}
	// diff against an empty state file fails the same way.
	empty := filepath.Join(dir, "empty.state")
	if err := run([]string{"install", "-n", "ripe", "--state", empty}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"diff", baseDir, empty}); err == nil || !strings.Contains(err.Error(), "no cells") {
		t.Errorf("diff with empty candidate store: %v", err)
	}
	// Exporting an empty store is always a mistake.
	if err := run([]string{"export", "-o", filepath.Join(dir, "out2")}); err == nil {
		t.Error("export of an empty store accepted")
	}
	// Re-exporting over an existing baseline is refused (stale records
	// would alias join keys and poison later diffs).
	err = run([]string{"export", "-o", baseDir, "--state", state})
	if err == nil || !strings.Contains(err.Error(), "not empty") {
		t.Errorf("re-export over existing baseline: %v, want not-empty error", err)
	}
}

// TestCLIDiffDisjointRunSetsWithOutput pins the joinless edge: two valid
// run sets sharing no join keys (gating the wrong experiment) produce a
// warning-only verdict, and -o must still succeed — CSV and JSON record
// the unmatched cells, the chart is simply skipped — rather than turning
// the coverage warning into a bogus failure after printing "OK".
func TestCLIDiffDisjointRunSetsWithOutput(t *testing.T) {
	dir := t.TempDir()
	aState := filepath.Join(dir, "a.state")
	bState := filepath.Join(dir, "b.state")
	if err := run([]string{
		"run", "-n", "micro", "-t", "gcc_native", "-b", "array_read",
		"-i", "test", "-r", "2", "--modeled-time", "--state", aState,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"run", "-n", "micro", "-t", "gcc_asan", "-b", "branch_heavy",
		"-i", "test", "-r", "2", "--modeled-time", "--state", bState,
	}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out")
	if err := run([]string{"diff", aState, bState, "-o", out}); err != nil {
		t.Fatalf("joinless diff with -o failed: %v", err)
	}
	baseDir := filepath.Join(dir, "base")
	if err := run([]string{"export", "-o", baseDir, "--state", aState}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"gate", "-baseline", baseDir, "--state", bState, "-o", filepath.Join(dir, "gateout")}); err != nil {
		t.Fatalf("joinless gate with -o failed: %v", err)
	}
	for _, name := range []string{"fexdiff.csv", "fexdiff.json"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(out, "fexdiff.svg")); err == nil {
		t.Error("chart written for a report with zero deltas")
	}
	data, err := os.ReadFile(filepath.Join(out, "fexdiff.json"))
	if err != nil {
		t.Fatal(err)
	}
	report, err := diff.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Deltas) != 0 || len(report.BaselineOnly) != 1 || len(report.CandidateOnly) != 1 {
		t.Errorf("joinless report: %d deltas, %d base-only, %d cand-only",
			len(report.Deltas), len(report.BaselineOnly), len(report.CandidateOnly))
	}
}

// plantRegression copies a run-set directory, scaling every wall_ns
// sample by factor.
func plantRegression(t *testing.T, srcDir, dstDir string, factor float64) {
	t.Helper()
	rs, err := diff.LoadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	wallRe := regexp.MustCompile(`wall_ns=([0-9.e+\-]+)`)
	for i := range rs.Cells {
		rs.Cells[i].Payload = wallRe.ReplaceAllFunc(rs.Cells[i].Payload, func(m []byte) []byte {
			v, err := strconv.ParseFloat(string(m[len("wall_ns="):]), 64)
			if err != nil {
				t.Fatal(err)
			}
			return []byte("wall_ns=" + strconv.FormatFloat(v*factor, 'g', -1, 64))
		})
	}
	if err := diff.WriteDir(rs, dstDir); err != nil {
		t.Fatal(err)
	}
}

func TestCLIClusterRunMatchesSerialCSV(t *testing.T) {
	serialDir, clusterDir := t.TempDir(), t.TempDir()
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-i", "test", "-r", "2",
		"--modeled-time",
		"-o", serialDir,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"run", "-n", "micro",
		"-t", "gcc_native", "gcc_asan",
		"-i", "test", "-r", "2",
		"--modeled-time",
		"-hosts", "w1,w2",
		"-o", clusterDir,
	}); err != nil {
		t.Fatal(err)
	}
	serial, err := os.ReadFile(filepath.Join(serialDir, "micro.csv"))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := os.ReadFile(filepath.Join(clusterDir, "micro.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(serial) != string(cluster) {
		t.Errorf("cluster CSV differs from serial CSV:\n--- serial ---\n%s\n--- cluster ---\n%s", serial, cluster)
	}
	if len(serial) == 0 {
		t.Error("empty CSV")
	}
}
