// Command fex is the framework's command-line entry point, mirroring the
// paper's fex.py:
//
//	fex <action> -n <name> [other arguments]
//
// Actions:
//
//	install  -n <artifact>                 run the setup stage for one artifact
//	run      -n <experiment> -t <types...> build, run, and collect an experiment
//	collect  -n <experiment>               re-run the collect stage from the stored log
//	plot     -n <experiment> -t <kind>     render a plot from collected results
//	diff     <baseline> <candidate>        cross-run differential analysis of two stored run sets
//	gate     -baseline <dir> [candidate]   CI gate: exit nonzero on a significant regression
//	export   -o <dir>                      write the result store as a committable run-set directory
//	clean                                  evict the persistent result store
//	compact                                garbage-collect and repack the result store
//	serve    [-addr host:port]             run the experiment service (HTTP/JSON API)
//	list                                   print the supported-experiments inventory (Table I)
//
// Flags (matching §III-B): -t build types / plot kind, -b benchmark
// filter, -m thread counts, -r repetitions (a count, or
// "auto[:level,relwidth]" for adaptive repetitions that stop once the
// confidence interval is tight enough), -i input class, -d debug
// builds, -v verbose, --no-build, -tool measurement tool (perf-stat,
// perf-stat-mem, time; default per experiment), -o host output directory,
// --state state
// file (container persistence between invocations), -jobs parallel
// experiment cells (default 1: the paper's serial loop), -hosts
// comma-separated cluster worker hosts (cells are dispatched remotely
// with failover; logs stay byte-identical to a serial run), -hosts-file
// a file of host names (one per line; re-read while the run executes, so
// new names join the cluster mid-run), -host-timeout a per-cell deadline
// after which a placement is treated as a host fault and fails over,
// -no-speculate disables speculative straggler re-execution (-speculate,
// the default, duplicates a straggling cell onto a spare idle host,
// first result wins), -no-steal disables work-stealing by idle workers,
// -no-load-aware disables latency-weighted placement (falling back to
// round-robin), -degrade local runs queued cells on the
// coordinator while every host is down or probing,
// --modeled-time record modeled instead of live wall time (makes logs
// fully machine-independent), -resume replay already-satisfied cells from
// the persistent result store instead of re-measuring them, -no-memo
// physically re-execute the kernel for every repetition instead of
// serving repeated (input, threads) configurations from the per-artifact
// execution memo, -cpuprofile/-memprofile write pprof profiles of the
// invocation for performance work on real experiment runs.
//
// Cross-run analysis flags: -baseline names the stored baseline run set
// for gate, -metric picks the compared per-repetition metric (default
// wall_ns), -alpha the significance level (default 0.05),
// -max-regression the tolerated regression percentage before gate fails
// (default 0: any significant regression fails), --higher-is-better flips
// the regression direction for rate-like metrics. Run sets are
// directories written by `fex export` (committable to a repository) or
// --state files from previous invocations.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"fex/internal/clock"
	"fex/internal/core"
	"fex/internal/diff"
	"fex/internal/remote"
	"fex/internal/serve"
	"fex/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fex:", err)
		os.Exit(1)
	}
}

// cliArgs holds parsed command-line arguments.
type cliArgs struct {
	action      string
	positional  []string
	name        string
	types       []string
	benches     []string
	threads     []int
	reps        int
	adaptive    bool
	repLevel    float64
	repRelWidth float64
	jobs        int
	hosts       []string
	hostsFile   string
	hostTimeout time.Duration
	noSpeculate bool
	noSteal     bool
	noLoadAware bool
	degrade     string
	input       string
	debug       bool
	verbose     bool
	noBuild     bool
	noMemo      bool
	noDedup     bool
	modelTime   bool
	resume      bool
	tool        string
	addr        string
	outDir      string
	stateFile   string
	cpuProfile  string
	memProfile  string
	baseline    string
	metric      string
	alpha       float64
	maxRegress  float64
	higherIsBet bool
}

func parseArgs(argv []string) (cliArgs, error) {
	if len(argv) == 0 {
		return cliArgs{}, errors.New("usage: fex <install|run|collect|plot|analyze|diff|gate|export|clean|compact|serve|list> -n <name> [args]")
	}
	args := cliArgs{action: argv[0], reps: 1, jobs: 1}
	i := 1
	next := func() (string, bool) {
		if i < len(argv) && !strings.HasPrefix(argv[i], "-") {
			v := argv[i]
			i++
			return v, true
		}
		return "", false
	}
	multi := func() []string {
		var out []string
		for {
			v, ok := next()
			if !ok {
				return out
			}
			out = append(out, v)
		}
	}
	for i < len(argv) {
		flag := argv[i]
		i++
		// Bare tokens between flags are positional arguments — the run-set
		// paths of "fex diff <baseline> <candidate>".
		if !strings.HasPrefix(flag, "-") {
			args.positional = append(args.positional, flag)
			continue
		}
		switch flag {
		case "-n":
			v, ok := next()
			if !ok {
				return args, errors.New("-n requires a value")
			}
			args.name = v
		case "-t":
			args.types = multi()
			if len(args.types) == 0 {
				return args, errors.New("-t requires at least one value")
			}
		case "-b":
			args.benches = multi()
		case "-m":
			vals := multi()
			threads, err := core.ParseThreadList(vals)
			if err != nil {
				return args, err
			}
			args.threads = threads
		case "-r":
			v, ok := next()
			if !ok {
				return args, errors.New("-r requires a value")
			}
			reps, adaptive, level, relWidth, err := core.ParseRepsSpec(v)
			if err != nil {
				return args, err
			}
			args.reps, args.adaptive, args.repLevel, args.repRelWidth = reps, adaptive, level, relWidth
			if adaptive {
				args.reps = 1 // placeholder; Config.Normalize pins the pilot size
			}
		case "-jobs":
			v, ok := next()
			if !ok {
				return args, errors.New("-jobs requires a value")
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return args, fmt.Errorf("bad -jobs value %q (want a positive integer)", v)
			}
			args.jobs = n
		case "-hosts":
			v, ok := next()
			if !ok {
				return args, errors.New("-hosts requires a comma-separated host list")
			}
			for _, h := range strings.Split(v, ",") {
				h = strings.TrimSpace(h)
				if h == "" {
					return args, fmt.Errorf("bad -hosts value %q (empty host name)", v)
				}
				args.hosts = append(args.hosts, h)
			}
		case "-hosts-file":
			v, ok := next()
			if !ok {
				return args, errors.New("-hosts-file requires a file path")
			}
			args.hostsFile = v
		case "-host-timeout":
			v, ok := next()
			if !ok {
				return args, errors.New("-host-timeout requires a duration (e.g. 30s)")
			}
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return args, fmt.Errorf("bad -host-timeout value %q (want a positive duration)", v)
			}
			args.hostTimeout = d
		case "-speculate":
			args.noSpeculate = false // the default; accepted for symmetry
		case "-no-speculate", "--no-speculate":
			args.noSpeculate = true
		case "-no-steal", "--no-steal":
			args.noSteal = true
		case "-no-load-aware", "--no-load-aware":
			args.noLoadAware = true
		case "-degrade":
			v, ok := next()
			if !ok {
				return args, errors.New("-degrade requires a mode (local)")
			}
			args.degrade = v
		case "-i":
			v, ok := next()
			if !ok {
				return args, errors.New("-i requires a value")
			}
			args.input = v
		case "-d":
			args.debug = true
		case "-v":
			args.verbose = true
		case "--no-build":
			args.noBuild = true
		case "-no-memo", "--no-memo":
			args.noMemo = true
		case "-no-dedup", "--no-dedup":
			args.noDedup = true
		case "--modeled-time":
			args.modelTime = true
		case "-resume":
			args.resume = true
		case "-tool":
			v, ok := next()
			if !ok {
				return args, errors.New("-tool requires a measurement-tool name")
			}
			args.tool = v
		case "-addr":
			v, ok := next()
			if !ok {
				return args, errors.New("-addr requires a listen address (host:port)")
			}
			args.addr = v
		case "-cpuprofile":
			v, ok := next()
			if !ok {
				return args, errors.New("-cpuprofile requires a file path")
			}
			args.cpuProfile = v
		case "-memprofile":
			v, ok := next()
			if !ok {
				return args, errors.New("-memprofile requires a file path")
			}
			args.memProfile = v
		case "-baseline":
			v, ok := next()
			if !ok {
				return args, errors.New("-baseline requires a run-set path (directory or state file)")
			}
			args.baseline = v
		case "-metric":
			v, ok := next()
			if !ok {
				return args, errors.New("-metric requires a metric name")
			}
			args.metric = v
		case "-alpha":
			v, ok := next()
			if !ok {
				return args, errors.New("-alpha requires a value")
			}
			a, err := strconv.ParseFloat(v, 64)
			if err != nil || a <= 0 || a >= 1 {
				return args, fmt.Errorf("bad -alpha value %q (want a number in (0,1))", v)
			}
			args.alpha = a
		case "-max-regression":
			v, ok := next()
			if !ok {
				return args, errors.New("-max-regression requires a percentage")
			}
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 {
				return args, fmt.Errorf("bad -max-regression value %q (want a percentage >= 0)", v)
			}
			args.maxRegress = p
		case "-higher-is-better", "--higher-is-better":
			args.higherIsBet = true
		case "-o":
			v, ok := next()
			if !ok {
				return args, errors.New("-o requires a directory")
			}
			args.outDir = v
		case "--state":
			v, ok := next()
			if !ok {
				return args, errors.New("--state requires a file path")
			}
			args.stateFile = v
		default:
			return args, fmt.Errorf("unknown flag %q", flag)
		}
	}
	return args, nil
}

func run(argv []string) error {
	args, err := parseArgs(argv)
	if err != nil {
		return err
	}
	// Only diff and gate take positional arguments (run-set paths); a bare
	// token anywhere else is a mistake (e.g. a build type without -t) and
	// must not be silently ignored.
	switch args.action {
	case "diff", "gate":
	default:
		if len(args.positional) > 0 {
			return fmt.Errorf("unexpected argument %q (did you forget a flag?)", args.positional[0])
		}
	}

	// Profiling hooks for perf work on real experiment runs: -cpuprofile
	// wraps the whole action, -memprofile snapshots the heap after it.
	if args.cpuProfile != "" {
		f, err := os.Create(args.cpuProfile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if args.memProfile != "" {
		defer func() {
			f, err := os.Create(args.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fex: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fex: write mem profile:", err)
			}
		}()
	}

	var verbose *os.File
	if args.verbose {
		verbose = os.Stderr
	}
	fx, err := core.New(core.Options{Verbose: verbose})
	if err != nil {
		return err
	}
	if args.stateFile != "" {
		if f, err := os.Open(args.stateFile); err == nil {
			loadErr := fx.LoadState(f)
			_ = f.Close()
			if loadErr != nil {
				return fmt.Errorf("load state %s: %w", args.stateFile, loadErr)
			}
		}
	}
	saveState := func() error {
		if args.stateFile == "" {
			return nil
		}
		f, err := os.Create(args.stateFile)
		if err != nil {
			return fmt.Errorf("save state: %w", err)
		}
		defer f.Close()
		return fx.SaveState(f)
	}

	switch args.action {
	case "install":
		if args.name == "" {
			return errors.New("install requires -n <artifact>")
		}
		names, err := fx.Install(args.name)
		if err != nil {
			return err
		}
		fmt.Printf("installed: %s\n", strings.Join(names, ", "))
		return saveState()

	case "run":
		if args.name == "" {
			return errors.New("run requires -n <experiment>")
		}
		// -hosts-file seeds (and can extend mid-run) the cluster host pool:
		// hosts listed at start merge with -hosts; names appearing in the
		// file while the run executes are Ensure'd into the cluster and
		// join the scheduler, absorbing queued cells.
		if args.hostsFile != "" {
			fromFile, err := readHostsFile(args.hostsFile)
			if err != nil {
				return err
			}
			args.hosts = mergeHosts(args.hosts, fromFile)
		}
		cfg, err := buildConfig(fx, args)
		if err != nil {
			return err
		}
		// Convenience: the CLI installs compiler prerequisites implicitly;
		// scripted setups call `fex install` explicitly first.
		if err := fx.InstallPrerequisites(cfg.BuildTypes...); err != nil {
			return err
		}
		stopPoll := pollHostsFile(fx, args.hostsFile)
		report, err := fx.Run(context.Background(), cfg)
		stopPoll()
		if err != nil {
			// The result store already holds every cell that completed
			// before the failure; persist the state anyway so a retry with
			// -resume measures only what is missing.
			if saveErr := saveState(); saveErr != nil {
				return errors.Join(err, saveErr)
			}
			return err
		}
		fmt.Printf("experiment %s: %d measurements\n", report.Experiment, report.Measurements)
		fmt.Print(report.Table.String())
		if args.outDir != "" {
			if err := exportFile(fx, report.CSVPath, args.outDir); err != nil {
				return err
			}
			if err := exportFile(fx, report.LogPath, args.outDir); err != nil {
				return err
			}
		}
		return saveState()

	case "collect":
		if args.name == "" {
			return errors.New("collect requires -n <experiment>")
		}
		tbl, err := fx.Collect(args.name)
		if err != nil {
			return err
		}
		fmt.Print(tbl.String())
		return saveState()

	case "plot":
		if args.name == "" {
			return errors.New("plot requires -n <experiment>")
		}
		kind := ""
		if len(args.types) > 0 {
			kind = args.types[0]
		}
		svg, err := fx.Plot(args.name, kind)
		if err != nil {
			return err
		}
		outDir := args.outDir
		if outDir == "" {
			outDir = "."
		}
		out := filepath.Join(outDir, args.name+"_"+orDefault(kind, "default")+".svg")
		if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
			return fmt.Errorf("write plot: %w", err)
		}
		fmt.Printf("wrote %s\n", out)
		return saveState()

	case "analyze":
		// fex analyze -n <experiment> -t <typeA> <typeB> [-b metric]
		if args.name == "" {
			return errors.New("analyze requires -n <experiment>")
		}
		if len(args.types) != 2 {
			return errors.New("analyze requires -t <typeA> <typeB>")
		}
		metric := ""
		if len(args.benches) == 1 {
			metric = args.benches[0]
		}
		report, err := fx.Analyze(args.name, metric, args.types[0], args.types[1])
		if err != nil {
			return err
		}
		fmt.Print(report.String())
		return nil

	case "diff":
		// fex diff <baseline> <candidate> [-metric m] [-alpha a] [-o dir]:
		// cross-run differential analysis of two stored run sets (each a
		// record directory from `fex export` or a --state file).
		if len(args.positional) != 2 {
			return errors.New("diff requires two run-set paths: fex diff <baselineDir> <candidateDir>")
		}
		report, err := compareRunSets(args.positional[0], args.positional[1], args)
		if err != nil {
			return err
		}
		text, err := report.AppendText(nil)
		if err != nil {
			return err
		}
		os.Stdout.Write(text)
		if args.outDir != "" {
			if err := writeDiffArtifacts(report, args.outDir); err != nil {
				return err
			}
		}
		return nil

	case "gate":
		// fex gate -baseline <dir> [candidate] [-max-regression pct]
		// [-alpha a] [--state file]: fail (exit nonzero) when the candidate
		// — a positional run-set path, or the current store from --state —
		// has a significant regression above the threshold.
		if args.baseline == "" {
			return errors.New("gate requires -baseline <dir|state-file>")
		}
		if len(args.positional) > 1 {
			return errors.New("gate takes at most one candidate run-set path")
		}
		candidate := ""
		if len(args.positional) == 1 {
			candidate = args.positional[0]
		}
		var report *diff.Report
		if candidate != "" {
			report, err = compareRunSets(args.baseline, candidate, args)
		} else {
			base, lerr := loadRunSet(args.baseline)
			if lerr != nil {
				return lerr
			}
			cand, lerr := diff.FromStore(fx.ResultStore(), orDefault(args.stateFile, "store"))
			if lerr != nil {
				return lerr
			}
			// An empty candidate store would "pass" vacuously (every
			// baseline cell unmatched is only a warning) — a typo'd --state
			// path must fail the gate, not green-light CI forever.
			if lerr := requireCells(cand); lerr != nil {
				return lerr
			}
			report, err = diff.Compare(base, cand, diffOptions(args))
		}
		if err != nil {
			return err
		}
		result := report.Gate(args.maxRegress)
		fmt.Println(result.String())
		if args.outDir != "" {
			if err := writeDiffArtifacts(report, args.outDir); err != nil {
				return err
			}
		}
		if !result.OK() {
			return fmt.Errorf("gate failed: %d significant regressions above %g%%",
				len(result.Regressions), args.maxRegress)
		}
		return nil

	case "export":
		// fex export -o <dir> [--state file]: write the persistent result
		// store as a directory of record files — the committable baseline
		// format `fex diff` and `fex gate -baseline` read back.
		if args.outDir == "" {
			return errors.New("export requires -o <dir>")
		}
		rs, err := diff.FromStore(fx.ResultStore(), orDefault(args.stateFile, "store"))
		if err != nil {
			return err
		}
		if err := requireCells(rs); err != nil {
			return err
		}
		if err := diff.WriteDir(rs, args.outDir); err != nil {
			return err
		}
		fmt.Printf("exported %d cells to %s\n", len(rs.Cells), args.outDir)
		return nil

	case "clean":
		// fex clean [--state file]: evict the persistent result store so
		// the next -resume run measures everything cold.
		before, err := fx.ResultStore().Stats()
		if err != nil {
			return err
		}
		if err := fx.CleanStore(); err != nil {
			return err
		}
		fmt.Printf("store cleaned: evicted %d cells (%d bytes)\n", before.Records, before.Bytes)
		return saveState()

	case "compact":
		// fex compact [--state file]: drop stored cells no current run could
		// replay (their ConfigHash matches no mode combination under the
		// current cost-model calibration and metrics schema) and repack the
		// survivors into per-shard pack files, which is also what makes
		// -resume's batched plan-ahead lookup cheap.
		stats, err := fx.CompactStore()
		if err != nil {
			return err
		}
		fmt.Printf("store compacted: kept %d cells, dropped %d stale, %d packs, %d bytes reclaimed\n",
			stats.Kept, stats.Dropped, stats.Packs, stats.Bytes)
		return saveState()

	case "serve":
		// fex serve [-addr host:port] [--state file]: run the experiment
		// service — an HTTP/JSON API accepting experiment configurations,
		// executing them through this framework instance, and exposing run
		// status, streaming logs, and artifacts. With --state, container
		// state is persisted after every settled run, so completed cells
		// survive a restart and later submissions replay them.
		return runServe(fx, args, saveState)

	case "list":
		fmt.Print(fx.BuildInventory().String())
		return nil

	default:
		return fmt.Errorf("unknown action %q (have install, run, collect, plot, analyze, diff, gate, export, clean, compact, serve, list)", args.action)
	}
}

// runServe hosts the experiment service until interrupted: it listens on
// -addr (default 127.0.0.1:8080), serves the HTTP API, and shuts down
// cleanly on SIGINT/SIGTERM — the in-flight run is cancelled, queued runs
// settle as cancelled, and state is saved one last time.
func runServe(fx *core.Fex, args cliArgs, saveState func() error) error {
	srv := serve.New(fx, serve.Options{
		OnRunFinished: func(id string, runErr error) {
			if err := saveState(); err != nil {
				fmt.Fprintf(os.Stderr, "fex: run %s: %v\n", id, err)
			}
		},
	})
	ln, err := net.Listen("tcp", orDefault(args.addr, "127.0.0.1:8080"))
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		_ = httpSrv.Shutdown(context.Background())
	}()
	fmt.Printf("fex serve listening on http://%s\n", ln.Addr())
	err = httpSrv.Serve(ln)
	srv.Close()
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return errors.Join(err, saveState())
}

// diffOptions maps CLI flags onto the differential analyzer's options.
func diffOptions(args cliArgs) diff.Options {
	return diff.Options{
		Metric:         args.metric,
		Alpha:          args.alpha,
		HigherIsBetter: args.higherIsBet,
	}
}

// requireCells rejects an empty run set: every CLI comparison site wants
// a loud failure over a vacuous verdict.
func requireCells(rs *diff.RunSet) error {
	if len(rs.Cells) == 0 {
		return fmt.Errorf("run set %s holds no cells (was the experiment run with --state?)", rs.Source)
	}
	return nil
}

// loadRunSet loads a stored run set from a path: a directory of record
// files (from `fex export`) or a --state file from a previous invocation,
// whose embedded result store is read back through a fresh framework.
func loadRunSet(path string) (*diff.RunSet, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("run set %s: %w", path, err)
	}
	if st.IsDir() {
		return diff.LoadDir(path)
	}
	fx, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("run set %s: %w", path, err)
	}
	defer f.Close()
	if err := fx.LoadState(f); err != nil {
		return nil, fmt.Errorf("run set %s: %w", path, err)
	}
	rs, err := diff.FromStore(fx.ResultStore(), path)
	if err != nil {
		return nil, err
	}
	if err := requireCells(rs); err != nil {
		return nil, err
	}
	return rs, nil
}

// compareRunSets loads and compares two run-set paths.
func compareRunSets(basePath, candPath string, args cliArgs) (*diff.Report, error) {
	base, err := loadRunSet(basePath)
	if err != nil {
		return nil, err
	}
	cand, err := loadRunSet(candPath)
	if err != nil {
		return nil, err
	}
	return diff.Compare(base, cand, diffOptions(args))
}

// writeDiffArtifacts writes the report's three renderings — CSV table,
// canonical JSON, speedup chart — into outDir as fexdiff.{csv,json,svg}.
func writeDiffArtifacts(report *diff.Report, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	csv, err := report.CSV()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "fexdiff.csv"), csv, 0o644); err != nil {
		return err
	}
	js, err := diff.EncodeReport(report)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "fexdiff.json"), js, 0o644); err != nil {
		return err
	}
	// A joinless comparison (disjoint run sets) has nothing to chart; the
	// CSV and JSON still record the unmatched cells, and a chartless
	// report must not turn a warning-only verdict into a failure.
	if len(report.Deltas) == 0 {
		return nil
	}
	svg, err := report.ChartSVG()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "fexdiff.svg"), []byte(svg), 0o644); err != nil {
		return err
	}
	return nil
}

func buildConfig(fx *core.Fex, args cliArgs) (core.Config, error) {
	cfg := core.Config{
		Experiment:   args.name,
		BuildTypes:   args.types,
		Benchmarks:   args.benches,
		Threads:      args.threads,
		Reps:         args.reps,
		AdaptiveReps: args.adaptive,
		RepLevel:     args.repLevel,
		RepRelWidth:  args.repRelWidth,
		Jobs:         args.jobs,
		Hosts:        args.hosts,
		HostTimeout:  args.hostTimeout,
		NoSpeculate:  args.noSpeculate,
		NoSteal:      args.noSteal,
		NoLoadAware:  args.noLoadAware,
		Degrade:      args.degrade,
		Debug:        args.debug,
		Verbose:      args.verbose,
		NoBuild:      args.noBuild,
		NoMemo:       args.noMemo,
		NoDedup:      args.noDedup,
		ModelTime:    args.modelTime,
		Resume:       args.resume,
		Tool:         args.tool,
	}
	if args.input != "" {
		cls, err := workload.ParseSizeClass(args.input)
		if err != nil {
			return cfg, err
		}
		cfg.Input = cls
	}
	if len(cfg.BuildTypes) == 0 {
		exp, err := fx.Experiment(args.name)
		if err != nil {
			return cfg, err
		}
		cfg.BuildTypes = exp.DefaultTypes
	}
	return cfg, nil
}

// readHostsFile parses a hosts file: one host name per line, blank lines
// and #-comments ignored.
func readHostsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hosts file: %w", err)
	}
	var hosts []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		hosts = append(hosts, line)
	}
	return hosts, nil
}

// mergeHosts appends the extras not already present, preserving order.
func mergeHosts(hosts, extras []string) []string {
	seen := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		seen[h] = true
	}
	for _, h := range extras {
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// pollHostsFile watches the -hosts-file for new host names while a run
// executes, Ensure-ing each into the framework cluster so the scheduler
// admits it mid-run. Returns a stop function; a no-op when no hosts file
// was given.
func pollHostsFile(fx *core.Fex, path string) func() {
	return pollHostsFileOn(fx.Clock(), fx.Cluster(), path, os.Stderr)
}

// pollHostsFileOn is the poller itself, parameterized on its time source
// and cluster so tests drive it on a virtual clock without a framework
// instance. It ticks on the run's scheduler clock (not the wall clock).
// Read errors are ignored (the file may be mid-rewrite); known names are
// skipped by the scheduler. A host that fails to Ensure is warned about
// once, not once per tick — the warning re-arms only after the host
// succeeds (so a host that breaks again warns anew).
func pollHostsFileOn(clk clock.Clock, cluster *remote.Cluster, path string, warn io.Writer) func() {
	if path == "" {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		ticker := clock.NewTicker(clk, 2*time.Second)
		defer ticker.Stop()
		warned := make(map[string]bool)
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			hosts, err := readHostsFile(path)
			if err != nil {
				continue
			}
			ensureHosts(cluster, hosts, warned, warn)
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// ensureHosts registers each name into the cluster. A name the cluster
// rejects is warned about once — not once per poll tick — and the
// warning re-arms only after that name registers successfully.
func ensureHosts(cluster *remote.Cluster, hosts []string, warned map[string]bool, warn io.Writer) {
	for _, h := range hosts {
		if _, err := cluster.Ensure(h); err != nil {
			if !warned[h] {
				warned[h] = true
				fmt.Fprintf(warn, "fex: hosts file: host %q: %v\n", h, err)
			}
		} else {
			delete(warned, h)
		}
	}
}

func exportFile(fx *core.Fex, containerPath, outDir string) error {
	data, err := fx.ReadResult(containerPath)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	out := filepath.Join(outDir, filepath.Base(containerPath))
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fmt.Errorf("export %s: %w", containerPath, err)
	}
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
