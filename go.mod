module fex

go 1.22
